//! Differential property tests for the sort-based `DepGraph` build:
//! on random edge multisets with random witnesses, the flat-buffer +
//! sorted-spine pipeline must agree with a naive hash/tree-indexed
//! reference — same edge set, same masks, same canonical (per-class
//! `Ord`-least) witnesses, same class counts — no matter how the edge
//! stream is split across incremental [`DepGraph::build`] calls, and
//! its frozen CSR must equal the legacy `DiGraph` hash-built freeze.

use elle_core::{DepGraph, Witness};
use elle_graph::{DiGraph, EdgeMask};
use elle_history::{Elem, Key, ProcessId, TxnId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small pool of witness shapes covering every class.
fn arb_witness() -> impl Strategy<Value = Witness> {
    (0u8..7, 0u64..4, 0u64..4).prop_map(|(shape, k, e)| match shape {
        0 => Witness::WwList {
            key: Key(k),
            prev: Elem(e),
            next: Elem(e + 1),
        },
        1 => Witness::WrList {
            key: Key(k),
            elem: Elem(e),
        },
        2 => Witness::RwList {
            key: Key(k),
            read_last: (e > 0).then_some(Elem(e)),
            next: Elem(e + 1),
        },
        3 => Witness::Rr { key: Key(k) },
        4 => Witness::Process {
            process: ProcessId(k as u32),
        },
        5 => Witness::Realtime {
            complete: e as usize,
            invoke: e as usize + 1 + k as usize,
        },
        _ => Witness::Timestamp {
            commit: e,
            start: e + 1 + k,
        },
    })
}

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32, Witness)>> {
    prop::collection::vec((0u32..10, 0u32..10, arb_witness()), 0..120)
}

/// The reference semantics: per `(src, dst)` pair, the union of witness
/// classes and the `Ord`-least witness per class.
type Reference = BTreeMap<(u32, u32), BTreeMap<u8, Witness>>;

fn reference(edges: &[(u32, u32, Witness)]) -> Reference {
    let mut m: Reference = BTreeMap::new();
    for (a, b, w) in edges {
        if a == b {
            continue; // self-edges dropped, as in DepGraph::add
        }
        let per_class = m.entry((*a, *b)).or_default();
        per_class
            .entry(w.class() as u8)
            .and_modify(|prev| {
                if w < prev {
                    *prev = w.clone();
                }
            })
            .or_insert_with(|| w.clone());
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bulk build == reference, under any split of the edge stream into
    /// incremental builds (batch: one build; stream: build per epoch).
    #[test]
    fn sort_build_matches_reference(
        edges in arb_edges(),
        split_num in 0u32..=100,
    ) {
        let split = edges.len() * split_num as usize / 100;
        let mut g = DepGraph::with_txns(10);
        for (a, b, w) in &edges[..split] {
            g.add(TxnId(*a), TxnId(*b), w.clone());
        }
        g.build();
        for (a, b, w) in &edges[split..] {
            g.add(TxnId(*a), TxnId(*b), w.clone());
        }
        g.build();

        let model = reference(&edges);
        prop_assert_eq!(g.edge_count(), model.len());
        let got: Vec<(u32, u32)> = g.edges().map(|(a, b, _)| (a, b)).collect();
        let want: Vec<(u32, u32)> = model.keys().copied().collect();
        prop_assert_eq!(got, want, "edge order");
        let mut want_counts: BTreeMap<u8, usize> = BTreeMap::new();
        for ((a, b), per_class) in &model {
            let mut mask = EdgeMask::NONE;
            for c in per_class.keys() {
                mask = mask.union(EdgeMask(1 << c));
                *want_counts.entry(*c).or_insert(0) += 1;
            }
            prop_assert_eq!(g.edge_mask(*a, *b), mask, "mask {}->{}", a, b);
            let wits: Vec<Witness> = per_class.values().cloned().collect();
            prop_assert_eq!(
                g.witnesses(TxnId(*a), TxnId(*b)),
                wits.as_slice(),
                "witnesses {}->{}", a, b
            );
        }
        let counts: BTreeMap<u8, usize> = g
            .class_counts()
            .into_iter()
            .map(|(c, n)| (c as u8, n))
            .collect();
        prop_assert_eq!(counts, want_counts, "class counts");
    }

    /// The frozen CSR equals what the legacy hash-indexed `DiGraph`
    /// build + freeze produces for the same edges.
    #[test]
    fn sort_build_freeze_matches_legacy_digraph(edges in arb_edges()) {
        let mut g = DepGraph::with_txns(10);
        let mut legacy = DiGraph::with_vertices(10);
        for (a, b, w) in &edges {
            g.add(TxnId(*a), TxnId(*b), w.clone());
            if a != b {
                legacy.add_edge(*a, *b, w.class());
            }
        }
        let ours = g.freeze();
        let theirs = legacy.freeze();
        prop_assert_eq!(ours.vertex_count(), theirs.vertex_count());
        prop_assert_eq!(ours.edge_count(), theirs.edge_count());
        let a: Vec<_> = ours.edges().collect();
        let b: Vec<_> = theirs.edges().collect();
        prop_assert_eq!(a, b);
        for v in 0..ours.vertex_count() as u32 {
            prop_assert_eq!(ours.in_row(v), theirs.in_row(v), "in_row {}", v);
        }
    }

    /// Merging two graphs == building one graph from the concatenation.
    #[test]
    fn merge_matches_concatenated_build(
        left in arb_edges(),
        right in arb_edges(),
    ) {
        let mut a = DepGraph::with_txns(10);
        for (x, y, w) in &left {
            a.add(TxnId(*x), TxnId(*y), w.clone());
        }
        a.build();
        let mut b = DepGraph::with_txns(10);
        for (x, y, w) in &right {
            b.add(TxnId(*x), TxnId(*y), w.clone());
        }
        b.build();
        a.merge(b);
        a.build();

        let mut both = DepGraph::with_txns(10);
        for (x, y, w) in left.iter().chain(&right) {
            both.add(TxnId(*x), TxnId(*y), w.clone());
        }
        both.build();

        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = both.edges().collect();
        prop_assert_eq!(ea, eb);
        for (x, y, _) in both.edges() {
            prop_assert_eq!(
                a.witnesses(TxnId(x), TxnId(y)),
                both.witnesses(TxnId(x), TxnId(y)),
                "witnesses {}->{}", x, y
            );
        }
        prop_assert_eq!(a.class_counts(), both.class_counts());
    }
}
