//! Property tests for the key-partitioned [`elle_core::datatype`]
//! pipeline: the rayon-parallel run must be indistinguishable from a
//! sequential reference pass — same anomaly multiset, same dependency
//! edges, same version orders — on randomly generated histories of
//! every datatype.

use elle_core::datatype::{run_mode, DriverOutput, Parallelism};
use elle_core::list_append::ListAppend;
use elle_core::rw_register::{RegisterOptions, RwRegister};
use elle_core::set_add::SetAdd;
use elle_core::{Anomaly, CheckOptions, Checker, DataType, KeyTypes, ProvenanceIndex};
use elle_dbsim::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;
use proptest::prelude::*;

fn arb_history(kind: ObjectKind) -> impl Strategy<Value = History> {
    (
        any::<u64>(),  // seed
        1usize..=6,    // processes
        40usize..=120, // txns
        1usize..=4,    // active keys — few keys, high contention
        prop_oneof![
            Just(IsolationLevel::ReadUncommitted),
            Just(IsolationLevel::ReadCommitted),
            Just(IsolationLevel::SnapshotIsolation),
            Just(IsolationLevel::Serializable),
        ],
        prop::bool::ANY, // faults
    )
        .prop_map(move |(seed, procs, n, keys, iso, faults)| {
            let params = GenParams {
                n_txns: n,
                min_txn_len: 1,
                max_txn_len: 5,
                active_keys: keys,
                writes_per_key: 16,
                read_prob: 0.5,
                kind,
                seed,
                final_reads: true,
            };
            let db = DbConfig::new(iso, kind)
                .with_processes(procs)
                .with_seed(seed ^ 0x5eed)
                .with_faults(if faults {
                    FaultPlan::typical()
                } else {
                    FaultPlan::none()
                });
            run_workload(params, db).expect("history pairs")
        })
}

/// Sort anomalies into a canonical multiset representation.
fn multiset(anomalies: &[Anomaly]) -> Vec<(String, Vec<u32>, String)> {
    let mut v: Vec<(String, Vec<u32>, String)> = anomalies
        .iter()
        .map(|a| {
            (
                format!("{:?}", a.typ),
                a.txns.iter().map(|t| t.0).collect(),
                a.explanation.clone(),
            )
        })
        .collect();
    v.sort();
    v
}

fn assert_outputs_agree(seq: &DriverOutput, par: &DriverOutput) -> Result<(), String> {
    // The driver merges in key order, so outputs must agree not just as
    // multisets but in exact order.
    prop_assert_eq!(&seq.anomalies, &par.anomalies);
    prop_assert_eq!(multiset(&seq.anomalies), multiset(&par.anomalies));
    prop_assert_eq!(&seq.version_orders, &par.version_orders);
    prop_assert_eq!(&seq.cyclic_keys, &par.cyclic_keys);
    prop_assert_eq!(
        seq.deps.edge_count(),
        par.deps.edge_count(),
        "edge counts diverge"
    );
    for (a, b, m) in seq.deps.edges() {
        prop_assert_eq!(par.deps.edge_mask(a, b), m, "edge {} -> {}", a, b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn list_append_parallel_matches_sequential(h in arb_history(ObjectKind::ListAppend)) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::List);
        let seq = run_mode::<ListAppend>(&h, &elems, &keys, (), Parallelism::Sequential);
        let par = run_mode::<ListAppend>(&h, &elems, &keys, (), Parallelism::Parallel);
        assert_outputs_agree(&seq, &par)?;
    }

    #[test]
    fn register_parallel_matches_sequential(
        h in arb_history(ObjectKind::Register),
        sequential_keys in prop::bool::ANY,
        linearizable_keys in prop::bool::ANY,
    ) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::Register);
        let opts = RegisterOptions {
            sequential_keys,
            linearizable_keys,
            ..RegisterOptions::default()
        };
        let seq = run_mode::<RwRegister>(&h, &elems, &keys, opts, Parallelism::Sequential);
        let par = run_mode::<RwRegister>(&h, &elems, &keys, opts, Parallelism::Parallel);
        assert_outputs_agree(&seq, &par)?;
    }

    #[test]
    fn set_parallel_matches_sequential(h in arb_history(ObjectKind::Set)) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::Set);
        let seq = run_mode::<SetAdd>(&h, &elems, &keys, (), Parallelism::Sequential);
        let par = run_mode::<SetAdd>(&h, &elems, &keys, (), Parallelism::Parallel);
        assert_outputs_agree(&seq, &par)?;
    }

    /// End to end: two full checker runs over the same history produce
    /// byte-identical reports despite the rayon fan-out inside.
    #[test]
    fn checker_reports_are_stable(h in arb_history(ObjectKind::ListAppend)) {
        let opts = CheckOptions::strict_serializable();
        let r1 = Checker::new(opts).check(&h);
        let r2 = Checker::new(opts).check(&h);
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}
