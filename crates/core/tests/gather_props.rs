//! Differential property tests for the flat sort-based gather: on
//! arbitrary histories — poisoned keys, duplicate elements, aborted and
//! info transactions, garbage reads — [`analyze_keys`] (packed
//! `(slot, occurrence)` buffer + counting sort) must be **byte-for-byte**
//! identical to [`analyze_keys_ref`], the retained hash-map grouping it
//! replaced (`FxHashMap<Key, Vec<Occ>>` + explicit key sort over the
//! same occurrence stream): same key order, same anomaly vector
//! (explanation strings included), same edges and witnesses, same
//! version orders, cyclic flags, and observed elements — for all four
//! datatypes and both scheduling modes. The streaming side of the
//! differential (flat gather under random epoch splits == batch on
//! every prefix) lives in `crates/stream/tests/stream_props.rs`.

use elle_core::counter;
use elle_core::datatype::{
    analyze_keys, analyze_keys_ref, duplicate_anomalies, AnalysisCtx, DatatypeAnalysis, KeySink,
    Parallelism,
};
use elle_core::list_append::ListAppend;
use elle_core::rw_register::{RegisterOptions, RwRegister};
use elle_core::set_add::SetAdd;
use elle_core::{DataType, DepGraph, GatherBuf, KeySlots, KeyTypes, ProvenanceIndex};
use elle_dbsim::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::{History, Key, TxnId};
use proptest::prelude::*;
use rustc_hash::FxHashMap;

fn arb_history(kind: ObjectKind) -> impl Strategy<Value = History> {
    (
        any::<u64>(),  // seed
        1usize..=6,    // processes
        40usize..=120, // txns
        1usize..=4,    // active keys — few keys, high contention
        prop_oneof![
            Just(IsolationLevel::ReadUncommitted),
            Just(IsolationLevel::ReadCommitted),
            Just(IsolationLevel::SnapshotIsolation),
            Just(IsolationLevel::Serializable),
        ],
        prop::bool::ANY, // faults (dirty reads, aborts, duplicate writes…)
    )
        .prop_map(move |(seed, procs, n, keys, iso, faults)| {
            let params = GenParams {
                n_txns: n,
                min_txn_len: 1,
                max_txn_len: 5,
                active_keys: keys,
                writes_per_key: 16,
                read_prob: 0.5,
                kind,
                seed,
                final_reads: true,
            };
            let db = DbConfig::new(iso, kind)
                .with_processes(procs)
                .with_seed(seed ^ 0x5eed)
                .with_faults(if faults {
                    FaultPlan::typical()
                } else {
                    FaultPlan::none()
                });
            run_workload(params, db).expect("history pairs")
        })
}

/// Byte-for-byte equality of two `(key, sink)` streams: every field of
/// every sink, in the same key order.
fn assert_sinks_identical(new: &[(Key, KeySink)], seed: &[(Key, KeySink)]) -> Result<(), String> {
    prop_assert_eq!(new.len(), seed.len(), "occupied key counts diverge");
    for ((nk, ns), (sk, ss)) in new.iter().zip(seed) {
        prop_assert_eq!(nk, sk, "key order diverges");
        prop_assert_eq!(&ns.anomalies, &ss.anomalies, "anomalies diverge on {}", nk);
        prop_assert_eq!(&ns.edges, &ss.edges, "edges diverge on {}", nk);
        prop_assert_eq!(
            &ns.version_order,
            &ss.version_order,
            "version order diverges on {}",
            nk
        );
        prop_assert_eq!(ns.cyclic, ss.cyclic, "cyclic flag diverges on {}", nk);
        prop_assert_eq!(
            &ns.observed_elems,
            &ss.observed_elems,
            "observed elems diverge on {}",
            nk
        );
    }
    Ok(())
}

/// Run one datatype through both pipelines in both scheduling modes.
fn assert_flat_matches_ref<D: DatatypeAnalysis>(
    h: &History,
    config: D::Config,
) -> Result<(), String> {
    let elems = ProvenanceIndex::build(h);
    let keys = KeyTypes::infer(h).keys_of(D::DATATYPE);
    let cx = AnalysisCtx {
        history: h,
        elems: &elems,
        keys: keys.iter().copied().collect(),
        config,
        scope: None,
    };
    let (_, poisoned) = duplicate_anomalies(&cx, &D::VOCAB);
    for mode in [Parallelism::Sequential, Parallelism::Parallel] {
        let (new, _gather) = analyze_keys::<D>(&cx, &poisoned, mode);
        let seed = analyze_keys_ref::<D>(&cx, &poisoned, mode);
        assert_sinks_identical(&new, &seed)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn list_flat_gather_matches_hash_map_ref(h in arb_history(ObjectKind::ListAppend)) {
        assert_flat_matches_ref::<ListAppend>(&h, ())?;
    }

    #[test]
    fn set_flat_gather_matches_hash_map_ref(h in arb_history(ObjectKind::Set)) {
        assert_flat_matches_ref::<SetAdd>(&h, ())?;
    }

    #[test]
    fn register_flat_gather_matches_hash_map_ref(
        h in arb_history(ObjectKind::Register),
        sequential_keys in prop::bool::ANY,
        linearizable_keys in prop::bool::ANY,
    ) {
        let opts = RegisterOptions {
            sequential_keys,
            linearizable_keys,
            ..RegisterOptions::default()
        };
        assert_flat_matches_ref::<RwRegister>(&h, opts)?;
    }

    /// The counter pipeline is a free function rather than a
    /// [`DatatypeAnalysis`] impl, so its reference is built inline: the
    /// same occurrence stream (via [`GatherBuf::into_parts`]) bucketed
    /// through `FxHashMap<Key, Vec<CounterOcc>>` with an explicit key
    /// sort — the shape of the pre-flat gather.
    #[test]
    fn counter_flat_gather_matches_hash_map_ref(h in arb_history(ObjectKind::Counter)) {
        let keys = KeyTypes::infer(&h).keys_of(DataType::Counter);
        let flat = counter::analyze(&h, &keys);

        let slots: KeySlots = keys.iter().copied().collect();
        let mut buf = GatherBuf::new();
        counter::gather(h.txns().iter(), &slots, &mut buf);
        let (slot_ids, items) = buf.into_parts();
        let mut data: FxHashMap<Key, Vec<counter::CounterOcc>> = FxHashMap::default();
        for (s, occ) in slot_ids.iter().zip(items) {
            data.entry(slots.key(*s)).or_default().push(occ);
        }
        let mut sorted: Vec<Key> = data.keys().copied().collect();
        sorted.sort_unstable();

        let mut anomalies = counter::internal_anomalies(h.txns().iter(), &slots);
        let mut deps = DepGraph::with_txns(h.len());
        for key in sorted {
            let kd = counter::CounterKeyData::from_occs(&data[&key]);
            let (mut a, edges) = counter::analyze_key(&h, key, &kd);
            anomalies.append(&mut a);
            for (x, y, w) in edges {
                deps.add(x, y, w);
            }
        }
        deps.build();

        prop_assert_eq!(&flat.anomalies, &anomalies);
        prop_assert_eq!(flat.deps.edge_count(), deps.edge_count(), "edge counts diverge");
        for (a, b, m) in deps.edges() {
            prop_assert_eq!(flat.deps.edge_mask(a, b), m, "edge {} -> {}", a, b);
            prop_assert_eq!(
                flat.deps.witnesses(TxnId(a), TxnId(b)),
                deps.witnesses(TxnId(a), TxnId(b)),
                "witnesses diverge on {} -> {}",
                a,
                b
            );
        }
    }
}
