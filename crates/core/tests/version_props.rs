//! Differential property tests for the version-interned datatype
//! pipeline: on arbitrary histories — including poisoned keys,
//! duplicate elements, garbage reads, and incompatible-order cases —
//! the interned passes must be **byte-for-byte** identical to the
//! preserved seed per-read pipeline (`elle_core::reference`): same
//! anomaly vector (order and explanation strings included), same
//! version orders, same cyclic keys, same dependency edges and
//! witnesses, in both sequential and parallel scheduling.

use elle_core::datatype::{run_mode, DriverOutput, Parallelism};
use elle_core::list_append::ListAppend;
use elle_core::reference::{ListAppendRef, RwRegisterRef, SetAddRef};
use elle_core::rw_register::{RegisterOptions, RwRegister};
use elle_core::set_add::SetAdd;
use elle_core::{CheckOptions, Checker, DataType, KeyTypes, ProvenanceIndex};
use elle_dbsim::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::{History, TxnId};
use proptest::prelude::*;

fn arb_history(kind: ObjectKind) -> impl Strategy<Value = History> {
    (
        any::<u64>(),  // seed
        1usize..=6,    // processes
        40usize..=120, // txns
        1usize..=4,    // active keys — few keys, high contention
        prop_oneof![
            Just(IsolationLevel::ReadUncommitted),
            Just(IsolationLevel::ReadCommitted),
            Just(IsolationLevel::SnapshotIsolation),
            Just(IsolationLevel::Serializable),
        ],
        prop::bool::ANY, // faults (dirty reads, aborts, duplicate writes…)
    )
        .prop_map(move |(seed, procs, n, keys, iso, faults)| {
            let params = GenParams {
                n_txns: n,
                min_txn_len: 1,
                max_txn_len: 5,
                active_keys: keys,
                writes_per_key: 16,
                read_prob: 0.5,
                kind,
                seed,
                final_reads: true,
            };
            let db = DbConfig::new(iso, kind)
                .with_processes(procs)
                .with_seed(seed ^ 0x5eed)
                .with_faults(if faults {
                    FaultPlan::typical()
                } else {
                    FaultPlan::none()
                });
            run_workload(params, db).expect("history pairs")
        })
}

/// Byte-for-byte equality of two driver outputs: exact anomaly vector
/// (order + explanations), version orders, cyclic keys, and the full
/// edge set with per-edge witnesses.
fn assert_byte_identical(new: &DriverOutput, seed: &DriverOutput) -> Result<(), String> {
    prop_assert_eq!(&new.anomalies, &seed.anomalies);
    prop_assert_eq!(&new.version_orders, &seed.version_orders);
    prop_assert_eq!(&new.cyclic_keys, &seed.cyclic_keys);
    prop_assert_eq!(
        new.deps.edge_count(),
        seed.deps.edge_count(),
        "edge counts diverge"
    );
    for (a, b, m) in seed.deps.edges() {
        prop_assert_eq!(new.deps.edge_mask(a, b), m, "edge {} -> {}", a, b);
        prop_assert_eq!(
            new.deps.witnesses(TxnId(a), TxnId(b)),
            seed.deps.witnesses(TxnId(a), TxnId(b)),
            "witnesses diverge on {} -> {}",
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn list_interned_matches_seed(h in arb_history(ObjectKind::ListAppend)) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::List);
        for mode in [Parallelism::Sequential, Parallelism::Parallel] {
            let new = run_mode::<ListAppend>(&h, &elems, &keys, (), mode);
            let seed = run_mode::<ListAppendRef>(&h, &elems, &keys, (), mode);
            assert_byte_identical(&new, &seed)?;
        }
    }

    #[test]
    fn set_interned_matches_seed(h in arb_history(ObjectKind::Set)) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::Set);
        for mode in [Parallelism::Sequential, Parallelism::Parallel] {
            let new = run_mode::<SetAdd>(&h, &elems, &keys, (), mode);
            let seed = run_mode::<SetAddRef>(&h, &elems, &keys, (), mode);
            assert_byte_identical(&new, &seed)?;
        }
    }

    #[test]
    fn register_interned_matches_seed(
        h in arb_history(ObjectKind::Register),
        sequential_keys in prop::bool::ANY,
        linearizable_keys in prop::bool::ANY,
    ) {
        let elems = ProvenanceIndex::build(&h);
        let keys = KeyTypes::infer(&h).keys_of(DataType::Register);
        let opts = RegisterOptions {
            sequential_keys,
            linearizable_keys,
            ..RegisterOptions::default()
        };
        for mode in [Parallelism::Sequential, Parallelism::Parallel] {
            let new = run_mode::<RwRegister>(&h, &elems, &keys, opts, mode);
            let seed = run_mode::<RwRegisterRef>(&h, &elems, &keys, opts, mode);
            assert_byte_identical(&new, &seed)?;
        }
    }

    /// End to end: the full checker report (anomalies, counts, models,
    /// stats) serializes to the same JSON bytes through the interned
    /// pipeline as through the seed per-read pipeline. Runs under
    /// whatever scheduling `ELLE_SEQUENTIAL` pins, so the CI matrix
    /// exercises both.
    #[test]
    fn checker_reports_byte_identical(
        h in arb_history(ObjectKind::ListAppend),
        h_reg in arb_history(ObjectKind::Register),
    ) {
        for history in [&h, &h_reg] {
            let checker = Checker::new(CheckOptions::strict_serializable());
            let new = serde_json::to_string(&checker.check(history)).unwrap();
            let seed = serde_json::to_string(&checker.check_seed_reference(history)).unwrap();
            prop_assert_eq!(&new, &seed);
        }
    }
}
