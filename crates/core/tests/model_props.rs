//! Property tests for the consistency-model lattice.

use elle_core::{
    directly_violated, strongest_satisfiable, violated_models, AnomalyType, ConsistencyModel,
};
use proptest::prelude::*;

const ALL_ANOMALIES: [AnomalyType; 23] = [
    AnomalyType::G1a,
    AnomalyType::G1b,
    AnomalyType::DirtyUpdate,
    AnomalyType::LostUpdate,
    AnomalyType::GarbageRead,
    AnomalyType::DuplicateWrite,
    AnomalyType::Internal,
    AnomalyType::IncompatibleOrder,
    AnomalyType::CyclicVersionOrder,
    AnomalyType::G0,
    AnomalyType::G1c,
    AnomalyType::GSingle,
    AnomalyType::G2Item,
    AnomalyType::G0Process,
    AnomalyType::G1cProcess,
    AnomalyType::GSingleProcess,
    AnomalyType::G2ItemProcess,
    AnomalyType::G0Realtime,
    AnomalyType::G1cRealtime,
    AnomalyType::GSingleRealtime,
    AnomalyType::G2ItemRealtime,
    AnomalyType::Internal,
    AnomalyType::GSI,
];

#[test]
fn implication_is_a_partial_order() {
    use ConsistencyModel as M;
    for a in M::ALL {
        assert!(a.implies(a), "{a} must imply itself");
        for b in M::ALL {
            if a != b && a.implies(b) {
                assert!(!b.implies(a), "antisymmetry violated: {a} <-> {b}");
            }
            for c in M::ALL {
                if a.implies(b) && b.implies(c) {
                    assert!(a.implies(c), "transitivity violated: {a} -> {b} -> {c}");
                }
            }
        }
    }
}

#[test]
fn strict_serializable_is_top_and_read_uncommitted_is_bottom() {
    use ConsistencyModel as M;
    for m in M::ALL {
        assert!(M::StrictSerializable.implies(m));
        if m != M::ReadUncommitted {
            assert!(!M::ReadUncommitted.implies(m), "{m}");
        }
    }
}

#[test]
fn every_cycle_anomaly_rules_out_strict_serializability() {
    for a in ALL_ANOMALIES {
        if a.is_cycle() {
            let v = violated_models([a].iter());
            assert!(
                v.contains(&ConsistencyModel::StrictSerializable),
                "{a} should rule out strict-serializable"
            );
        }
    }
}

#[test]
fn augmented_cycles_never_violate_more_than_base() {
    // A `-realtime` cycle's violations must be a subset of the base
    // anomaly's: needing extra edges is weaker evidence.
    for (base, aug) in [
        (AnomalyType::G0, AnomalyType::G0Realtime),
        (AnomalyType::G1c, AnomalyType::G1cRealtime),
        (AnomalyType::GSingle, AnomalyType::GSingleRealtime),
        (AnomalyType::G2Item, AnomalyType::G2ItemRealtime),
        (AnomalyType::G0, AnomalyType::G0Process),
        (AnomalyType::G1c, AnomalyType::G1cProcess),
        (AnomalyType::GSingle, AnomalyType::GSingleProcess),
        (AnomalyType::G2Item, AnomalyType::G2ItemProcess),
    ] {
        let vb = violated_models([base].iter());
        let va = violated_models([aug].iter());
        assert!(
            va.is_subset(&vb),
            "{aug} violates {va:?} which exceeds {base}'s {vb:?}"
        );
    }
}

proptest! {
    /// The satisfiable frontier is an antichain, disjoint from the
    /// violated set, and every model is classified one way or the other.
    #[test]
    fn frontier_is_consistent(idx in prop::collection::vec(0usize..ALL_ANOMALIES.len(), 0..6)) {
        let anomalies: Vec<AnomalyType> = idx.iter().map(|i| ALL_ANOMALIES[*i]).collect();
        let violated = violated_models(anomalies.iter());
        let frontier = strongest_satisfiable(anomalies.iter());
        for m in &frontier {
            prop_assert!(!violated.contains(m));
            for other in &frontier {
                if m != other {
                    prop_assert!(!m.implies(*other) && !other.implies(*m),
                                 "frontier not an antichain: {} vs {}", m, other);
                }
            }
        }
        // Upward closure: anything implying a violated model is violated.
        for m in ConsistencyModel::ALL {
            for v in &violated {
                if m.implies(*v) {
                    prop_assert!(violated.contains(&m));
                }
            }
        }
    }

    /// Monotonicity: more anomalies never shrink the violated set.
    #[test]
    fn violations_are_monotone(a in 0usize..ALL_ANOMALIES.len(),
                               rest in prop::collection::vec(0usize..ALL_ANOMALIES.len(), 0..5)) {
        let small: Vec<AnomalyType> = rest.iter().map(|i| ALL_ANOMALIES[*i]).collect();
        let mut big = small.clone();
        big.push(ALL_ANOMALIES[a]);
        let vs = violated_models(small.iter());
        let vb = violated_models(big.iter());
        prop_assert!(vs.is_subset(&vb));
    }
}

#[test]
fn directly_violated_covers_every_anomaly() {
    // Every anomaly type maps to a (possibly empty, for informational
    // types) set — exercised so a new variant can't be forgotten silently.
    for a in ALL_ANOMALIES {
        let _ = directly_violated(a);
    }
    assert!(directly_violated(AnomalyType::CyclicVersionOrder).is_empty());
    assert!(!directly_violated(AnomalyType::G0).is_empty());
}
