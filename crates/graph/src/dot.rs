//! Graphviz DOT export, for Figure-3-style cycle plots.
//!
//! Rendering reads the frozen [`Csr`], whose rows are sorted by neighbour
//! id, so the emitted edge order is a deterministic function of the edge
//! set — two graphs with the same edges produce byte-identical DOT no
//! matter the order their edges were inserted in.

use crate::{Csr, EdgeMask};

/// Render the subgraph induced by `vertices` (or the whole graph if `None`)
/// to DOT. `name_of` supplies vertex labels (e.g. `T1`).
pub fn to_dot(
    g: &Csr,
    vertices: Option<&[u32]>,
    allowed: EdgeMask,
    name_of: &dyn Fn(u32) -> String,
) -> String {
    let mut s = String::from("digraph deps {\n  rankdir=LR;\n  node [shape=box];\n");
    let in_scope: Option<Vec<bool>> = vertices.map(|vs| {
        let mut b = vec![false; g.vertex_count()];
        for &v in vs {
            b[v as usize] = true;
        }
        b
    });
    let ok = |v: u32| in_scope.as_ref().is_none_or(|b| b[v as usize]);

    if let Some(vs) = vertices {
        for &v in vs {
            s.push_str(&format!("  \"{}\";\n", name_of(v)));
        }
    }
    for (a, b, m) in g.edges() {
        if !ok(a) || !ok(b) {
            continue;
        }
        let km = EdgeMask(m.0 & allowed.0);
        if km.is_empty() {
            continue;
        }
        let label: Vec<&str> = km.iter().map(|c| c.label()).collect();
        s.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            name_of(a),
            name_of(b),
            label.join(",")
        ));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiGraph, EdgeClass};

    #[test]
    fn renders_edges_and_labels() {
        let mut g = DiGraph::with_vertices(2);
        g.add_edge(0, 1, EdgeClass::Wr);
        g.add_edge(1, 0, EdgeClass::Rw);
        let dot = to_dot(&g.freeze(), None, EdgeMask::ALL, &|v| format!("T{v}"));
        assert!(dot.contains("\"T0\" -> \"T1\" [label=\"wr\"]"));
        assert!(dot.contains("\"T1\" -> \"T0\" [label=\"rw\"]"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn scoping_and_masking() {
        let mut g = DiGraph::with_vertices(3);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 2, EdgeClass::Rw);
        let csr = g.freeze();
        let dot = to_dot(&csr, Some(&[0, 1]), EdgeMask::WW, &|v| format!("T{v}"));
        assert!(dot.contains("T0"));
        assert!(!dot.contains("T2"));
        let dot2 = to_dot(&csr, None, EdgeMask::RW, &|v| format!("T{v}"));
        assert!(!dot2.contains("ww"));
        assert!(dot2.contains("rw"));
    }

    #[test]
    fn output_independent_of_insertion_order() {
        let mut a = DiGraph::with_vertices(3);
        a.add_edge(2, 0, EdgeClass::Ww);
        a.add_edge(0, 2, EdgeClass::Wr);
        a.add_edge(0, 1, EdgeClass::Rw);
        let mut b = DiGraph::with_vertices(3);
        b.add_edge(0, 1, EdgeClass::Rw);
        b.add_edge(0, 2, EdgeClass::Wr);
        b.add_edge(2, 0, EdgeClass::Ww);
        let name = |v: u32| format!("T{v}");
        assert_eq!(
            to_dot(&a.freeze(), None, EdgeMask::ALL, &name),
            to_dot(&b.freeze(), None, EdgeMask::ALL, &name)
        );
    }
}
