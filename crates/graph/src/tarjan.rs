//! Iterative Tarjan strongly-connected components.
//!
//! The paper (§2, §6) leans on Tarjan's linear-time SCC algorithm to make
//! cycle detection `O(vertices + edges)`. We implement it iteratively: real
//! histories produce graphs with 10⁵–10⁶ vertices and recursion would
//! overflow the stack.
//!
//! The primary implementation is [`Csr::tarjan_scc`], which walks the
//! frozen CSR rows with caller-provided [`Scratch`] buffers. The
//! [`DiGraph`]-based [`tarjan_scc`] is retained as the reference
//! implementation that differential property tests compare against.

use crate::csr::{Csr, Scratch};
use crate::{DiGraph, EdgeMask};

impl Csr {
    /// Strongly connected components of the subgraph restricted to
    /// `allowed` edge classes, walking the frozen CSR with reusable
    /// `scratch` buffers.
    ///
    /// Same contract as the [`tarjan_scc`] reference: components come back
    /// in reverse topological order, each sorted ascending, and only
    /// components that can contain a cycle (≥ 2 vertices, or a self-loop)
    /// are returned.
    pub fn tarjan_scc(&self, allowed: EdgeMask, scratch: &mut Scratch) -> Vec<Vec<u32>> {
        self.tarjan_scc_impl(allowed, None, scratch)
    }

    /// [`Csr::tarjan_scc`] restricted to the vertices of `region`: DFS
    /// roots are drawn from `region` (in the given order) and traversal
    /// never leaves it.
    ///
    /// **Soundness contract:** this returns the same components as an
    /// unrestricted pass *only when* every `allowed`-cycle of the graph
    /// lies entirely inside `region` — e.g. when `region` is the union of
    /// the cyclic SCCs of a superset mask. Vertices outside such a region
    /// are singletons under `allowed` and can be skipped wholesale, which
    /// is what makes the early-acyclic certificate pay: one Tarjan over
    /// the full graph, then per-class passes over just the cyclic core.
    pub fn tarjan_scc_within(
        &self,
        allowed: EdgeMask,
        region: &[u32],
        scratch: &mut Scratch,
    ) -> Vec<Vec<u32>> {
        self.tarjan_scc_impl(allowed, Some(region), scratch)
    }

    fn tarjan_scc_impl(
        &self,
        allowed: EdgeMask,
        region: Option<&[u32]>,
        scratch: &mut Scratch,
    ) -> Vec<Vec<u32>> {
        let n = self.vertex_count();
        const UNVISITED: u32 = u32::MAX;
        scratch.reset_tarjan(n);
        let Scratch {
            index_of,
            lowlink,
            on_stack,
            stack,
            frames,
            region: in_region,
            ..
        } = scratch;
        if let Some(vs) = region {
            in_region.ensure(n);
            for &v in vs {
                in_region.insert(v);
            }
        }
        let member = |in_region: &crate::csr::BitSet, v: u32| match region {
            Some(_) => in_region.contains(v),
            None => true,
        };

        let mut next_index = 0u32;
        let mut sccs = Vec::new();

        let roots: Box<dyn Iterator<Item = u32>> = match region {
            Some(vs) => Box::new(vs.iter().copied()),
            None => Box::new(0..n as u32),
        };
        for root in roots {
            if index_of[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index_of[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack.insert(root);

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                let (dsts, masks) = self.out_row(v);
                let mut descended = false;
                while (*pos as usize) < dsts.len() {
                    let (w, m) = (dsts[*pos as usize], masks[*pos as usize]);
                    *pos += 1;
                    if !m.intersects(allowed) || !member(in_region, w) {
                        continue;
                    }
                    let wi = index_of[w as usize];
                    if wi == UNVISITED {
                        // Descend.
                        index_of[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        frames.push((w, 0));
                        descended = true;
                        break;
                    } else if on_stack.contains(w) {
                        lowlink[v as usize] = lowlink[v as usize].min(wi);
                    }
                }
                if descended {
                    continue;
                }
                // v is finished.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index_of[v as usize] {
                    // v is an SCC root; pop its component.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack.remove(w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic =
                        comp.len() > 1 || self.edge_mask(comp[0], comp[0]).intersects(allowed);
                    if cyclic {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
        on_stack.clear();
        in_region.clear();
        sccs
    }
}

/// Strongly connected components of the subgraph restricted to `allowed`
/// edge classes. Components are returned in **reverse topological order**
/// (Tarjan's natural output order) and only components with ≥ 2 vertices or
/// a self-loop are returned — singletons without self-loops cannot contain
/// cycles.
pub fn tarjan_scc(g: &DiGraph, allowed: EdgeMask) -> Vec<Vec<u32>> {
    let n = g.vertex_count();
    const UNVISITED: u32 = u32::MAX;

    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (vertex, position in its adjacency list).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index_of[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index_of[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let edges = g.out_edges(v);
            let mut descended = false;
            while *pos < edges.len() {
                let (w, m) = edges[*pos];
                *pos += 1;
                if !m.intersects(allowed) {
                    continue;
                }
                let wi = index_of[w as usize];
                if wi == UNVISITED {
                    // Descend.
                    index_of[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(wi);
                }
            }
            if descended {
                continue;
            }
            // v is finished.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index_of[v as usize] {
                // v is an SCC root; pop its component.
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                let cyclic = comp.len() > 1 || g.edge_mask(comp[0], comp[0]).intersects(allowed);
                if cyclic {
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// The condensation: maps each vertex to its component id (including
/// singleton components), plus the number of components. Useful for tests
/// and for callers that need a full partition rather than just the cyclic
/// components.
pub fn condensation(g: &DiGraph, allowed: EdgeMask) -> (Vec<u32>, u32) {
    // Re-run Tarjan but keep every component.
    let n = g.vertex_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_of = vec![0u32; n];
    let mut n_comps = 0u32;
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index_of[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index_of[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let edges = g.out_edges(v);
            let mut descended = false;
            while *pos < edges.len() {
                let (w, m) = edges[*pos];
                *pos += 1;
                if !m.intersects(allowed) {
                    continue;
                }
                let wi = index_of[w as usize];
                if wi == UNVISITED {
                    index_of[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(wi);
                }
            }
            if descended {
                continue;
            }
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index_of[v as usize] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    comp_of[w as usize] = n_comps;
                    if w == v {
                        break;
                    }
                }
                n_comps += 1;
            }
        }
    }
    (comp_of, n_comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeClass;

    fn ring(n: u32) -> DiGraph {
        let mut g = DiGraph::with_vertices(n as usize);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, EdgeClass::Ww);
        }
        g
    }

    #[test]
    fn single_ring_is_one_scc() {
        let g = ring(5);
        let sccs = tarjan_scc(&g, EdgeMask::ALL);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dag_has_no_cyclic_scc() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 2, EdgeClass::Ww);
        g.add_edge(0, 3, EdgeClass::Wr);
        assert!(tarjan_scc(&g, EdgeMask::ALL).is_empty());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut g = DiGraph::with_vertices(2);
        g.add_edge(1, 1, EdgeClass::Ww);
        let sccs = tarjan_scc(&g, EdgeMask::ALL);
        assert_eq!(sccs, vec![vec![1]]);
    }

    #[test]
    fn mask_restriction_breaks_cycle() {
        let mut g = DiGraph::with_vertices(2);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 0, EdgeClass::Rw);
        assert_eq!(tarjan_scc(&g, EdgeMask::ALL).len(), 1);
        assert!(tarjan_scc(&g, EdgeMask::WW).is_empty());
        assert!(tarjan_scc(&g, EdgeMask::RW).is_empty());
        assert_eq!(tarjan_scc(&g, EdgeMask::WW | EdgeMask::RW).len(), 1);
    }

    #[test]
    fn two_separate_rings() {
        let mut g = DiGraph::with_vertices(6);
        for (a, b) in [(0, 1), (1, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(a, b, EdgeClass::Ww);
        }
        let mut sccs = tarjan_scc(&g, EdgeMask::ALL);
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![3, 4, 5]]);
    }

    #[test]
    fn condensation_counts() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 0, EdgeClass::Ww);
        g.add_edge(1, 2, EdgeClass::Ww);
        // vertex 3 isolated
        let (comp, n) = condensation(&g, EdgeMask::ALL);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[2], comp[3]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 200k-vertex chain with a back edge: exercises the iterative DFS.
        let n = 200_000u32;
        let mut g = DiGraph::with_vertices(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, EdgeClass::Ww);
        }
        g.add_edge(n - 1, 0, EdgeClass::Ww);
        let sccs = tarjan_scc(&g, EdgeMask::ALL);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n as usize);
    }

    #[test]
    fn csr_matches_reference_on_small_graphs() {
        use crate::csr::Scratch;
        let mut scratch = Scratch::new();
        let cases: Vec<DiGraph> = vec![
            ring(5),
            {
                let mut g = DiGraph::with_vertices(2);
                g.add_edge(1, 1, EdgeClass::Ww);
                g
            },
            {
                let mut g = DiGraph::with_vertices(6);
                for (a, b) in [(0, 1), (1, 0), (3, 4), (4, 5), (5, 3)] {
                    g.add_edge(a, b, EdgeClass::Ww);
                }
                g
            },
        ];
        for g in cases {
            let csr = g.freeze();
            let mut a = tarjan_scc(&g, EdgeMask::ALL);
            let mut b = csr.tarjan_scc(EdgeMask::ALL, &mut scratch);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn csr_mask_restriction_breaks_cycle() {
        use crate::csr::Scratch;
        let mut g = DiGraph::with_vertices(2);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 0, EdgeClass::Rw);
        let csr = g.freeze();
        let mut s = Scratch::new();
        assert_eq!(csr.tarjan_scc(EdgeMask::ALL, &mut s).len(), 1);
        assert!(csr.tarjan_scc(EdgeMask::WW, &mut s).is_empty());
        assert!(csr.tarjan_scc(EdgeMask::RW, &mut s).is_empty());
        assert_eq!(csr.tarjan_scc(EdgeMask::WW | EdgeMask::RW, &mut s).len(), 1);
    }

    #[test]
    fn csr_scratch_reuse_across_sizes() {
        use crate::csr::Scratch;
        let mut s = Scratch::new();
        let big = ring(100);
        let sccs = big.freeze().tarjan_scc(EdgeMask::ALL, &mut s);
        assert_eq!(sccs.len(), 1);
        // A smaller graph with the same scratch must not see stale state.
        let small = ring(3);
        let sccs = small.freeze().tarjan_scc(EdgeMask::ALL, &mut s);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }
}
