//! A compact directed graph with class-labeled edges.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A dependency class an edge may belong to.
///
/// The first three are Adya's direct dependencies; the rest are the
/// additional orders of §5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum EdgeClass {
    /// Write-write dependency (`ww`): Tj installs the version after Ti's.
    Ww = 0,
    /// Write-read dependency (`wr`): Tj read the version Ti installed.
    Wr = 1,
    /// Read-write anti-dependency (`rw`): Tj installs the version after the
    /// one Ti read.
    Rw = 2,
    /// Per-process (session) order.
    Process = 3,
    /// Real-time order: Ti completed before Tj was invoked.
    Realtime = 4,
    /// Version order derived edges (non-traceable datatypes, §5.2).
    Version = 5,
    /// Read-read ordering (counters/sets, §3) — not an Adya dependency, but
    /// usable for cycle detection on less-informative datatypes.
    Rr = 6,
    /// Time-precedes order (§5.1): Ti's commit timestamp precedes Tj's
    /// start timestamp, per database-exposed transaction timestamps —
    /// the edges of Adya's start-ordered serialization graph.
    Timestamp = 7,
}

impl EdgeClass {
    /// All classes, in discriminant order.
    pub const ALL: [EdgeClass; 8] = [
        EdgeClass::Ww,
        EdgeClass::Wr,
        EdgeClass::Rw,
        EdgeClass::Process,
        EdgeClass::Realtime,
        EdgeClass::Version,
        EdgeClass::Rr,
        EdgeClass::Timestamp,
    ];

    /// Short label used in explanations and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            EdgeClass::Ww => "ww",
            EdgeClass::Wr => "wr",
            EdgeClass::Rw => "rw",
            EdgeClass::Process => "process",
            EdgeClass::Realtime => "rt",
            EdgeClass::Version => "version",
            EdgeClass::Rr => "rr",
            EdgeClass::Timestamp => "ts",
        }
    }
}

/// A set of [`EdgeClass`]es, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct EdgeMask(pub u8);

impl EdgeMask {
    /// The empty mask.
    pub const NONE: EdgeMask = EdgeMask(0);
    /// Every class.
    pub const ALL: EdgeMask = EdgeMask(0xff);
    /// `ww` only — G0's cycle universe.
    pub const WW: EdgeMask = EdgeMask(1 << EdgeClass::Ww as u8);
    /// `wr` only.
    pub const WR: EdgeMask = EdgeMask(1 << EdgeClass::Wr as u8);
    /// `rw` only.
    pub const RW: EdgeMask = EdgeMask(1 << EdgeClass::Rw as u8);
    /// `process` only.
    pub const PROCESS: EdgeMask = EdgeMask(1 << EdgeClass::Process as u8);
    /// `rt` only.
    pub const REALTIME: EdgeMask = EdgeMask(1 << EdgeClass::Realtime as u8);
    /// `version` only.
    pub const VERSION: EdgeMask = EdgeMask(1 << EdgeClass::Version as u8);
    /// `rr` only.
    pub const RR: EdgeMask = EdgeMask(1 << EdgeClass::Rr as u8);
    /// `ts` only.
    pub const TIMESTAMP: EdgeMask = EdgeMask(1 << EdgeClass::Timestamp as u8);

    /// A mask holding a single class.
    pub const fn of(c: EdgeClass) -> EdgeMask {
        EdgeMask(1 << c as u8)
    }

    /// Union of two masks.
    pub const fn union(self, other: EdgeMask) -> EdgeMask {
        EdgeMask(self.0 | other.0)
    }

    /// Does this mask contain class `c`?
    pub const fn contains(self, c: EdgeClass) -> bool {
        self.0 & (1 << c as u8) != 0
    }

    /// Do the two masks share any class?
    pub const fn intersects(self, other: EdgeMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Is the mask empty?
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the classes present.
    pub fn iter(self) -> impl Iterator<Item = EdgeClass> {
        EdgeClass::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }
}

impl std::ops::BitOr for EdgeMask {
    type Output = EdgeMask;
    fn bitor(self, rhs: EdgeMask) -> EdgeMask {
        self.union(rhs)
    }
}

impl std::fmt::Display for EdgeMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{}", c.label())?;
            first = false;
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

/// A directed graph over dense `u32` vertices with class-masked edges.
///
/// Parallel edges of different classes between the same pair are merged
/// into one adjacency entry whose mask is the union — cycle searches then
/// filter by mask.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    /// adjacency: for each vertex, `(dst, mask)` pairs, deduplicated.
    adj: Vec<Vec<(u32, EdgeMask)>>,
    /// fast lookup of existing edges for merging.
    index: FxHashMap<(u32, u32), u32>, // (src,dst) -> position in adj[src]
    edge_count: usize,
}

impl DiGraph {
    /// A graph with `n` vertices and no edges.
    pub fn with_vertices(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
            index: FxHashMap::default(),
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct `(src, dst)` edges (classes merged).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Pre-size the edge index for `n` additional edges.
    pub fn reserve_edges(&mut self, n: usize) {
        self.index.reserve(n);
    }

    /// Ensure vertex `v` exists.
    pub fn ensure_vertex(&mut self, v: u32) {
        if v as usize >= self.adj.len() {
            self.adj.resize(v as usize + 1, Vec::new());
        }
    }

    /// Add an edge of class `c` from `src` to `dst`. Self-loops are allowed
    /// at this layer; checkers filter them out where the formalism requires
    /// `Ti ≠ Tj`.
    pub fn add_edge(&mut self, src: u32, dst: u32, c: EdgeClass) {
        self.add_edge_mask(src, dst, EdgeMask::of(c));
    }

    /// Add an edge carrying a whole mask.
    pub fn add_edge_mask(&mut self, src: u32, dst: u32, m: EdgeMask) {
        self.add_edge_mask_pos(src, dst, m);
    }

    /// Add an edge carrying a whole mask, returning its position within
    /// `src`'s adjacency row and whether the `(src, dst)` pair is new.
    /// Positions are stable for the life of the graph, so callers can
    /// maintain per-edge side tables without a second hash index.
    pub fn add_edge_mask_pos(&mut self, src: u32, dst: u32, m: EdgeMask) -> Option<(u32, bool)> {
        self.add_edge_mask_pos_prev(src, dst, m)
            .map(|(pos, prev)| (pos, prev.is_empty()))
    }

    /// Like [`DiGraph::add_edge_mask_pos`], but returns the edge's mask
    /// *before* this addition (empty = the pair is new) — callers that
    /// maintain per-class counters learn which classes this call
    /// introduced without a second probe.
    pub fn add_edge_mask_pos_prev(
        &mut self,
        src: u32,
        dst: u32,
        m: EdgeMask,
    ) -> Option<(u32, EdgeMask)> {
        if m.is_empty() {
            return None;
        }
        self.ensure_vertex(src.max(dst));
        match self.index.get(&(src, dst)) {
            Some(&pos) => {
                let slot = &mut self.adj[src as usize][pos as usize];
                let prev = slot.1;
                slot.1 = slot.1.union(m);
                Some((pos, prev))
            }
            None => {
                let pos = self.adj[src as usize].len() as u32;
                self.adj[src as usize].push((dst, m));
                self.index.insert((src, dst), pos);
                self.edge_count += 1;
                Some((pos, EdgeMask::NONE))
            }
        }
    }

    /// The position of edge `(src, dst)` within `src`'s adjacency row.
    pub fn edge_pos(&self, src: u32, dst: u32) -> Option<u32> {
        self.index.get(&(src, dst)).copied()
    }

    /// The mask on edge `(src, dst)`, or the empty mask if absent.
    pub fn edge_mask(&self, src: u32, dst: u32) -> EdgeMask {
        match self.index.get(&(src, dst)) {
            Some(&pos) => self.adj[src as usize][pos as usize].1,
            None => EdgeMask::NONE,
        }
    }

    /// Outgoing `(dst, mask)` pairs of `v`.
    pub fn out_edges(&self, v: u32) -> &[(u32, EdgeMask)] {
        &self.adj[v as usize]
    }

    /// Outgoing neighbours reachable via at least one class in `allowed`.
    pub fn out_neighbors_masked<'a>(
        &'a self,
        v: u32,
        allowed: EdgeMask,
    ) -> impl Iterator<Item = u32> + 'a {
        self.adj[v as usize]
            .iter()
            .filter(move |(_, m)| m.intersects(allowed))
            .map(|(d, _)| *d)
    }

    /// All edges as `(src, dst, mask)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, EdgeMask)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(s, es)| es.iter().map(move |(d, m)| (s as u32, *d, *m)))
    }

    /// A copy containing only edge classes in `allowed` (vertices kept).
    pub fn filtered(&self, allowed: EdgeMask) -> DiGraph {
        let mut g = DiGraph::with_vertices(self.vertex_count());
        for (s, d, m) in self.edges() {
            let km = EdgeMask(m.0 & allowed.0);
            if !km.is_empty() {
                g.add_edge_mask(s, d, km);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ops() {
        let m = EdgeMask::WW | EdgeMask::RW;
        assert!(m.contains(EdgeClass::Ww));
        assert!(m.contains(EdgeClass::Rw));
        assert!(!m.contains(EdgeClass::Wr));
        assert!(m.intersects(EdgeMask::RW));
        assert!(!m.intersects(EdgeMask::WR));
        assert!(!m.is_empty());
        assert!(EdgeMask::NONE.is_empty());
        assert_eq!(m.iter().count(), 2);
        assert_eq!(m.to_string(), "ww+rw");
        assert_eq!(EdgeMask::NONE.to_string(), "∅");
    }

    #[test]
    fn all_classes_have_distinct_bits() {
        let mut seen = 0u8;
        for c in EdgeClass::ALL {
            let bit = EdgeMask::of(c).0;
            assert_eq!(seen & bit, 0);
            seen |= bit;
        }
        assert_eq!(seen, EdgeMask::ALL.0);
    }

    #[test]
    fn merge_parallel_edges() {
        let mut g = DiGraph::with_vertices(3);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(0, 1, EdgeClass::Wr);
        g.add_edge(0, 2, EdgeClass::Rw);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_mask(0, 1), EdgeMask::WW | EdgeMask::WR);
        assert_eq!(g.edge_mask(0, 2), EdgeMask::RW);
        assert_eq!(g.edge_mask(1, 0), EdgeMask::NONE);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DiGraph::default();
        g.add_edge(5, 2, EdgeClass::Ww);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.out_edges(5).len(), 1);
    }

    #[test]
    fn masked_neighbors() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(0, 2, EdgeClass::Rw);
        g.add_edge(0, 3, EdgeClass::Wr);
        let ww_rw: Vec<u32> = g
            .out_neighbors_masked(0, EdgeMask::WW | EdgeMask::RW)
            .collect();
        assert_eq!(ww_rw, vec![1, 2]);
    }

    #[test]
    fn filtered_subgraph() {
        let mut g = DiGraph::with_vertices(3);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 2, EdgeClass::Rw);
        g.add_edge(2, 0, EdgeClass::Ww);
        let ww = g.filtered(EdgeMask::WW);
        assert_eq!(ww.edge_count(), 2);
        assert_eq!(ww.edge_mask(1, 2), EdgeMask::NONE);
        assert_eq!(ww.vertex_count(), 3);
    }

    #[test]
    fn empty_mask_edge_is_noop() {
        let mut g = DiGraph::with_vertices(2);
        g.add_edge_mask(0, 1, EdgeMask::NONE);
        assert_eq!(g.edge_count(), 0);
    }
}
