//! # elle-graph
//!
//! Graph substrate for the Elle checker: a compact directed graph whose
//! edges carry a small bitmask of *dependency classes*, plus the algorithms
//! §6 of the paper calls for:
//!
//! * [Tarjan's strongly-connected components][tarjan] (iterative — histories
//!   have hundreds of thousands of vertices, so no recursion),
//! * breadth-first shortest-cycle search restricted to edge classes,
//!   including the paper's "exactly one read-write edge" search used for
//!   G-single,
//! * transitive reduction of interval orders (used for real-time edges,
//!   §5.1's `O(n · p)` construction),
//! * DOT export for the Figure-3-style visualizations.
//!
//! The graph has a two-phase lifecycle: a mutable [`DiGraph`] builder
//! accumulates edges, then [`DiGraph::freeze`] compacts it into an
//! immutable [`Csr`] on which all searches run — flat sorted adjacency,
//! no hash maps, mask filtering at traversal time, and reusable
//! [`Scratch`] working memory (see [`csr`-module docs](Csr)).
//!
//! The crate is independent of Elle's domain types: vertices are dense
//! `u32` indices; callers map transactions onto them.
//!
//! [tarjan]: https://doi.org/10.1137/0201010

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod csr;
mod cycles;
mod digraph;
mod dot;
mod reduction;
mod tarjan;

pub use csr::{BitSet, Csr, EdgeBuf, Scratch};
pub use cycles::{find_cycle, find_cycle_with_single, shortest_cycle_through, CycleSpec};
pub use digraph::{DiGraph, EdgeClass, EdgeMask};
pub use dot::to_dot;
pub use reduction::{
    csr_reachable, interval_order_graph, interval_order_reduction, transitive_closure_reachable,
    Interval,
};
pub use tarjan::{condensation, tarjan_scc};
