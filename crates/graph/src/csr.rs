//! Frozen compressed-sparse-row (CSR) graph and reusable search scratch.
//!
//! The graph layer has a two-phase lifecycle:
//!
//! 1. **Build** — a mutable [`DiGraph`] accumulates edges (hash-indexed so
//!    parallel edges merge into one mask);
//! 2. **Freeze** — [`DiGraph::freeze`] compacts the adjacency into an
//!    immutable [`Csr`]: flat `offsets` / `dsts` / `masks` arrays for both
//!    forward and reverse traversal, with every row **sorted by neighbour
//!    id**. Lookups binary-search a row instead of hashing, traversal is a
//!    contiguous slice scan, and edge enumeration order is a deterministic
//!    function of the edge *set* — never of insertion order.
//!
//! All cycle-search algorithms run on the frozen form, filtering by
//! [`EdgeMask`] at traversal time, so no per-anomaly-class subgraph copy is
//! ever materialized. Their working memory lives in a caller-provided
//! [`Scratch`] and is reused across searches: bitsets are word-packed and
//! cleared sparsely (only the words actually touched), queues and stacks
//! keep their capacity, and the BFS parent array is never cleared at all —
//! entries are only read for vertices marked visited in the *current*
//! search.

use crate::{DiGraph, EdgeMask};

/// An immutable CSR snapshot of a [`DiGraph`].
///
/// Vertex ids are the same dense `u32`s as in the builder. Rows are sorted
/// by neighbour id, so [`Csr::edge_mask`] is a binary search and
/// [`Csr::edges`] yields edges in `(src, dst)` lexicographic order.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `dsts` / `masks` — row `v`.
    offsets: Vec<u32>,
    /// Out-neighbours, sorted ascending within each row.
    dsts: Vec<u32>,
    /// Class mask per out-edge, parallel to `dsts`.
    masks: Vec<EdgeMask>,
    /// Reverse row offsets (into `r_srcs` / `r_masks`).
    r_offsets: Vec<u32>,
    /// In-neighbours, sorted ascending within each row.
    r_srcs: Vec<u32>,
    /// Class mask per in-edge, parallel to `r_srcs`.
    r_masks: Vec<EdgeMask>,
}

impl DiGraph {
    /// Freeze this builder into an immutable [`Csr`] snapshot.
    ///
    /// `O(V + E log d)` where `d` is the maximum out-degree. The builder is
    /// untouched; freeze again after further mutation if needed.
    pub fn freeze(&self) -> Csr {
        Csr::from_digraph(self)
    }

    /// Re-freeze after incremental mutation, reusing the rows of a
    /// previous snapshot.
    ///
    /// `dirty_rows` must contain (at least) every vertex whose out-row
    /// changed since `prev` was frozen — new out-edges *or* mask updates
    /// on existing edges. Vertices at or beyond `prev`'s vertex count are
    /// implicitly dirty. Unchanged rows are block-copied from `prev`
    /// without re-sorting; only dirty rows pay the per-row sort. The
    /// reverse adjacency is rebuilt by the same counting sort as a full
    /// freeze (linear, no sorts).
    ///
    /// Produces a snapshot byte-identical to [`DiGraph::freeze`] — checked
    /// by `refreeze_matches_full_freeze` in `crates/graph/tests/props.rs`.
    pub fn refreeze(&self, prev: &Csr, dirty_rows: &BitSet) -> Csr {
        Csr::refreeze_digraph(self, prev, dirty_rows)
    }
}

impl Csr {
    /// Build a CSR from a [`DiGraph`] builder (see [`DiGraph::freeze`]).
    pub fn from_digraph(g: &DiGraph) -> Csr {
        let n = g.vertex_count();
        let e = g.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dsts = Vec::with_capacity(e);
        let mut masks = Vec::with_capacity(e);
        offsets.push(0);
        let mut row: Vec<(u32, EdgeMask)> = Vec::new();
        for v in 0..n as u32 {
            row.clear();
            row.extend_from_slice(g.out_edges(v));
            row.sort_unstable_by_key(|&(d, _)| d);
            for &(d, m) in &row {
                dsts.push(d);
                masks.push(m);
            }
            offsets.push(dsts.len() as u32);
        }

        let (r_offsets, r_srcs, r_masks) = reverse_rows(n, &offsets, &dsts, &masks);
        Csr {
            offsets,
            dsts,
            masks,
            r_offsets,
            r_srcs,
            r_masks,
        }
    }

    /// Incremental freeze: see [`DiGraph::refreeze`].
    fn refreeze_digraph(g: &DiGraph, prev: &Csr, dirty_rows: &BitSet) -> Csr {
        let n = g.vertex_count();
        let prev_n = prev.vertex_count();
        let e = g.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dsts = Vec::with_capacity(e);
        let mut masks = Vec::with_capacity(e);
        offsets.push(0);
        let mut row: Vec<(u32, EdgeMask)> = Vec::new();
        let mut v = 0u32;
        while (v as usize) < n {
            let dirty = v as usize >= prev_n || dirty_rows.contains(v);
            if !dirty {
                // Copy a maximal run of clean rows from the previous
                // snapshot in one extend each.
                let run_start = v;
                while (v as usize) < n && (v as usize) < prev_n && !dirty_rows.contains(v) {
                    offsets.push(offsets[v as usize] + prev.row_len(v));
                    v += 1;
                }
                let lo = prev.offsets[run_start as usize] as usize;
                let hi = prev.offsets[v as usize] as usize;
                dsts.extend_from_slice(&prev.dsts[lo..hi]);
                masks.extend_from_slice(&prev.masks[lo..hi]);
                continue;
            }
            row.clear();
            row.extend_from_slice(g.out_edges(v));
            row.sort_unstable_by_key(|&(d, _)| d);
            for &(d, m) in &row {
                dsts.push(d);
                masks.push(m);
            }
            offsets.push(dsts.len() as u32);
            v += 1;
        }

        let (r_offsets, r_srcs, r_masks) = reverse_rows(n, &offsets, &dsts, &masks);
        Csr {
            offsets,
            dsts,
            masks,
            r_offsets,
            r_srcs,
            r_masks,
        }
    }

    /// Build a CSR from already-sorted, already-deduplicated edges —
    /// `packed[i]` is `src << 32 | dst`, ascending, one entry per
    /// distinct `(src, dst)` pair, with `masks` parallel. This is the
    /// hash-free fast path [`EdgeBuf::build`] and the checker's bulk
    /// spine build feed: `O(V + E)`, no sorts, no probes. The vertex
    /// count is `max(n, 1 + max endpoint)`, matching what a
    /// [`DiGraph`] grown by `ensure_vertex` would freeze to.
    pub fn from_sorted_edges(n: usize, packed: &[u64], masks: &[EdgeMask]) -> Csr {
        debug_assert_eq!(packed.len(), masks.len());
        debug_assert!(packed.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let mut n = n;
        for &p in packed {
            let hi = (p >> 32) as usize;
            let lo = (p & 0xffff_ffff) as usize;
            n = n.max(hi + 1).max(lo + 1);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dsts = Vec::with_capacity(packed.len());
        offsets.push(0);
        let mut row = 0u32;
        for &p in packed {
            let src = (p >> 32) as u32;
            while row < src {
                offsets.push(dsts.len() as u32);
                row += 1;
            }
            dsts.push((p & 0xffff_ffff) as u32);
        }
        while (row as usize) < n {
            offsets.push(dsts.len() as u32);
            row += 1;
        }
        let masks = masks.to_vec();
        let (r_offsets, r_srcs, r_masks) = reverse_rows(n, &offsets, &dsts, &masks);
        Csr {
            offsets,
            dsts,
            masks,
            r_offsets,
            r_srcs,
            r_masks,
        }
    }

    /// Number of out-edges of `v`.
    fn row_len(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of distinct `(src, dst)` edges (classes merged).
    pub fn edge_count(&self) -> usize {
        self.dsts.len()
    }

    /// Row `v` of the forward adjacency: `(neighbours, masks)`, sorted by
    /// neighbour id.
    pub fn out_row(&self, v: u32) -> (&[u32], &[EdgeMask]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.dsts[lo..hi], &self.masks[lo..hi])
    }

    /// Row `v` of the reverse adjacency: `(in-neighbours, masks)`, sorted
    /// by neighbour id.
    ///
    /// None of the shipped search algorithms traverse backwards yet — the
    /// reverse arrays exist for in-edge queries (witness lookups, future
    /// backward BFS) and cost one extra counting-sort pass at freeze
    /// time, included in the `freeze` benchmark numbers.
    pub fn in_row(&self, v: u32) -> (&[u32], &[EdgeMask]) {
        let lo = self.r_offsets[v as usize] as usize;
        let hi = self.r_offsets[v as usize + 1] as usize;
        (&self.r_srcs[lo..hi], &self.r_masks[lo..hi])
    }

    /// Outgoing `(dst, mask)` pairs of `v`, in ascending `dst` order.
    pub fn out_edges(&self, v: u32) -> impl Iterator<Item = (u32, EdgeMask)> + '_ {
        let (ds, ms) = self.out_row(v);
        ds.iter().copied().zip(ms.iter().copied())
    }

    /// Outgoing neighbours of `v` reachable via at least one class in
    /// `allowed`.
    pub fn out_neighbors_masked(
        &self,
        v: u32,
        allowed: EdgeMask,
    ) -> impl Iterator<Item = u32> + '_ {
        self.out_edges(v)
            .filter(move |(_, m)| m.intersects(allowed))
            .map(|(d, _)| d)
    }

    /// The mask on edge `(src, dst)` — a binary search of `src`'s row — or
    /// the empty mask if absent.
    pub fn edge_mask(&self, src: u32, dst: u32) -> EdgeMask {
        let (ds, ms) = self.out_row(src);
        match ds.binary_search(&dst) {
            Ok(i) => ms[i],
            Err(_) => EdgeMask::NONE,
        }
    }

    /// All edges as `(src, dst, mask)`, in `(src, dst)` lexicographic
    /// order — a stable ordering independent of insertion history.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, EdgeMask)> + '_ {
        (0..self.vertex_count() as u32)
            .flat_map(move |v| self.out_edges(v).map(move |(d, m)| (v, d, m)))
    }
}

/// Build the reverse adjacency of a forward CSR by counting sort.
/// Scanning sources in ascending order keeps each reverse row sorted
/// without a second sort pass. Shared by every CSR constructor.
#[allow(clippy::type_complexity)]
fn reverse_rows(
    n: usize,
    offsets: &[u32],
    dsts: &[u32],
    masks: &[EdgeMask],
) -> (Vec<u32>, Vec<u32>, Vec<EdgeMask>) {
    let mut r_offsets = vec![0u32; n + 1];
    for &d in dsts {
        r_offsets[d as usize + 1] += 1;
    }
    for i in 0..n {
        r_offsets[i + 1] += r_offsets[i];
    }
    let mut cursor: Vec<u32> = r_offsets[..n].to_vec();
    let mut r_srcs = vec![0u32; dsts.len()];
    let mut r_masks = vec![EdgeMask::NONE; dsts.len()];
    for s in 0..n {
        for i in offsets[s] as usize..offsets[s + 1] as usize {
            let d = dsts[i] as usize;
            let at = cursor[d] as usize;
            r_srcs[at] = s as u32;
            r_masks[at] = masks[i];
            cursor[d] += 1;
        }
    }
    (r_offsets, r_srcs, r_masks)
}

/// A flat buffer of `(src, dst, mask)` edge tuples, packed as
/// `src << 32 | dst` — the hash-free alternative to building through a
/// [`DiGraph`]. Producers append in any order (duplicates welcome);
/// [`EdgeBuf::build`] sorts by the packed key — a counting-sort scatter
/// on `src` (the radix) followed by small per-row sorts on `(dst)` —
/// merges duplicate pairs' masks, and emits the frozen [`Csr`]
/// directly. No per-edge hash probe, no incremental adjacency growth:
/// `O(V + E + Σ rows r·log r)` with flat sequential memory traffic.
///
/// Byte-identical to `DiGraph` + [`DiGraph::freeze`] over the same edge
/// multiset — checked by `edgebuf_build_matches_digraph_freeze` in
/// `crates/graph/tests/csr_props.rs`.
#[derive(Debug, Clone, Default)]
pub struct EdgeBuf {
    /// `(src << 32 | dst, mask)`, in push order.
    edges: Vec<(u64, EdgeMask)>,
}

impl EdgeBuf {
    /// An empty buffer.
    pub fn new() -> EdgeBuf {
        EdgeBuf::default()
    }

    /// An empty buffer with room for `n` edges.
    pub fn with_capacity(n: usize) -> EdgeBuf {
        EdgeBuf {
            edges: Vec::with_capacity(n),
        }
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, src: u32, dst: u32, m: EdgeMask) {
        self.edges.push(((src as u64) << 32 | dst as u64, m));
    }

    /// Number of buffered (pre-dedup) edge tuples.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Reserve room for `n` more edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Move another buffer's edges onto the end of this one.
    pub fn append(&mut self, other: &mut EdgeBuf) {
        self.edges.append(&mut other.edges);
    }

    /// Sort, dedup (merging masks), and freeze into a [`Csr`] with at
    /// least `n` vertices. Consumes the buffered tuples; the buffer is
    /// left empty with its capacity intact.
    pub fn build(&mut self, n: usize) -> Csr {
        let mut n = n;
        for &(p, _) in &self.edges {
            let hi = (p >> 32) as usize;
            let lo = (p & 0xffff_ffff) as usize;
            n = n.max(hi + 1).max(lo + 1);
        }
        // Radix pass: counting-sort scatter on the high 32 bits (src).
        let mut counts = vec![0u32; n + 1];
        for &(p, _) in &self.edges {
            counts[(p >> 32) as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut slots: Vec<(u64, EdgeMask)> = vec![(0, EdgeMask::NONE); self.edges.len()];
        {
            let mut cursor = counts.clone();
            for &(p, m) in &self.edges {
                let s = (p >> 32) as usize;
                slots[cursor[s] as usize] = (p, m);
                cursor[s] += 1;
            }
        }
        self.edges.clear();
        // Per-row sort on dst, then a dedup-merge sweep shared with the
        // sorted-edge constructor.
        let mut packed: Vec<u64> = Vec::with_capacity(slots.len());
        let mut masks: Vec<EdgeMask> = Vec::with_capacity(slots.len());
        for row in 0..n {
            let lo = counts[row] as usize;
            let hi = counts[row + 1] as usize;
            let row = &mut slots[lo..hi];
            row.sort_unstable_by_key(|&(p, _)| p);
            for &(p, m) in row.iter() {
                if packed.last() == Some(&p) {
                    let last = masks.last_mut().expect("parallel to packed");
                    *last = last.union(m);
                } else {
                    packed.push(p);
                    masks.push(m);
                }
            }
        }
        Csr::from_sorted_edges(n, &packed, &masks)
    }
}

/// A word-packed bitset over dense `u32` ids with sparse clearing.
///
/// [`BitSet::clear`] zeroes only the words a search actually touched, so a
/// BFS over a 30-vertex component of a million-vertex graph pays for 30
/// bits, not a megabit memset.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl BitSet {
    /// An empty bitset; grows via [`BitSet::ensure`].
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Make room for ids `0..n`.
    pub fn ensure(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Set bit `i`; returns `true` if it was previously unset.
    pub fn insert(&mut self, i: u32) -> bool {
        let w = (i >> 6) as usize;
        let bit = 1u64 << (i & 63);
        let word = &mut self.words[w];
        if *word == 0 {
            self.touched.push(w as u32);
        }
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Clear bit `i` (its word stays on the touched list).
    pub fn remove(&mut self, i: u32) {
        self.words[(i >> 6) as usize] &= !(1u64 << (i & 63));
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: u32) -> bool {
        self.words[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
    }

    /// Reset to empty by zeroing only the touched words.
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Reusable working memory for the CSR search algorithms.
///
/// Create one per thread (or per sequential pass) and hand it to every
/// search: buffers grow to the largest graph seen and are then reused
/// without reallocation. The invariant is **clear-at-entry**, not
/// clear-at-exit: each algorithm resets the transient state it reads
/// (`visited` and `queue` at the start of every BFS, the Tarjan discovery
/// state at the start of every SCC pass) and may leave it populated when
/// it returns. Only the shared `in_scope` set, which outlives the BFS
/// calls within one per-component search, is cleared on exit. The BFS
/// `parent` array and Tarjan `lowlink` are *never* cleared: entries are
/// only read for vertices marked in `visited` / discovered during the
/// same search. New algorithms must follow the same convention — never
/// read transient scratch state without clearing it first.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// BFS visited set.
    pub(crate) visited: BitSet,
    /// Component membership during per-SCC searches.
    pub(crate) in_scope: BitSet,
    /// BFS predecessor per visited vertex (no-clear; see type docs).
    pub(crate) parent: Vec<u32>,
    /// BFS queue, drained by index rather than pop-front.
    pub(crate) queue: Vec<u32>,
    /// Tarjan: discovery index per vertex (`u32::MAX` = unvisited).
    pub(crate) index_of: Vec<u32>,
    /// Tarjan: lowlink per visited vertex (no-clear).
    pub(crate) lowlink: Vec<u32>,
    /// Tarjan: on-stack flags.
    pub(crate) on_stack: BitSet,
    /// Tarjan: the component stack.
    pub(crate) stack: Vec<u32>,
    /// Tarjan: explicit DFS frames `(vertex, row position)`.
    pub(crate) frames: Vec<(u32, u32)>,
    /// Region membership for restricted SCC passes (cleared on exit by
    /// its user, like `in_scope`).
    pub(crate) region: BitSet,
}

impl Scratch {
    /// A fresh scratch; buffers are sized on first use.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Size every buffer for a graph of `n` vertices.
    pub(crate) fn ensure_bfs(&mut self, n: usize) {
        self.visited.ensure(n);
        self.in_scope.ensure(n);
        if self.parent.len() < n {
            self.parent.resize(n, u32::MAX);
        }
    }

    /// Size the Tarjan buffers and reset discovery state.
    pub(crate) fn reset_tarjan(&mut self, n: usize) {
        self.index_of.clear();
        self.index_of.resize(n, u32::MAX);
        if self.lowlink.len() < n {
            self.lowlink.resize(n, 0);
        }
        self.on_stack.ensure(n);
        self.on_stack.clear();
        self.stack.clear();
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeClass;

    #[test]
    fn freeze_sorts_rows_and_preserves_masks() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 3, EdgeClass::Ww);
        g.add_edge(0, 1, EdgeClass::Wr);
        g.add_edge(0, 2, EdgeClass::Rw);
        g.add_edge(0, 1, EdgeClass::Ww); // merges with the wr edge
        let c = g.freeze();
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 3);
        let (ds, _) = c.out_row(0);
        assert_eq!(ds, &[1, 2, 3]);
        assert_eq!(c.edge_mask(0, 1), EdgeMask::WW | EdgeMask::WR);
        assert_eq!(c.edge_mask(0, 2), EdgeMask::RW);
        assert_eq!(c.edge_mask(0, 3), EdgeMask::WW);
        assert_eq!(c.edge_mask(1, 0), EdgeMask::NONE);
        assert_eq!(c.edge_mask(3, 3), EdgeMask::NONE);
    }

    #[test]
    fn freeze_order_independent_of_insertion() {
        let mut a = DiGraph::with_vertices(3);
        a.add_edge(0, 2, EdgeClass::Ww);
        a.add_edge(0, 1, EdgeClass::Wr);
        let mut b = DiGraph::with_vertices(3);
        b.add_edge(0, 1, EdgeClass::Wr);
        b.add_edge(0, 2, EdgeClass::Ww);
        let (ca, cb) = (a.freeze(), b.freeze());
        let ea: Vec<_> = ca.edges().collect();
        let eb: Vec<_> = cb.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn reverse_rows_are_sorted_and_complete() {
        let mut g = DiGraph::with_vertices(5);
        for (s, d) in [(4, 1), (0, 1), (2, 1), (1, 0), (3, 1)] {
            g.add_edge(s, d, EdgeClass::Ww);
        }
        let c = g.freeze();
        let (srcs, _) = c.in_row(1);
        assert_eq!(srcs, &[0, 2, 3, 4]);
        let (srcs0, masks0) = c.in_row(0);
        assert_eq!(srcs0, &[1]);
        assert_eq!(masks0, &[EdgeMask::WW]);
        assert!(c.in_row(2).0.is_empty());
    }

    #[test]
    fn masked_neighbors_filter_at_traversal() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(0, 2, EdgeClass::Rw);
        g.add_edge(0, 3, EdgeClass::Wr);
        let c = g.freeze();
        let ww_rw: Vec<u32> = c
            .out_neighbors_masked(0, EdgeMask::WW | EdgeMask::RW)
            .collect();
        assert_eq!(ww_rw, vec![1, 2]);
    }

    #[test]
    fn empty_graph_freezes() {
        let c = DiGraph::default().freeze();
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.edges().count(), 0);
    }

    #[test]
    fn bitset_sparse_clear() {
        let mut b = BitSet::new();
        b.ensure(1000);
        assert!(b.insert(3));
        assert!(!b.insert(3));
        assert!(b.insert(900));
        assert!(b.contains(3));
        assert!(!b.contains(4));
        b.remove(3);
        assert!(!b.contains(3));
        assert!(b.insert(3));
        b.clear();
        assert!(!b.contains(3));
        assert!(!b.contains(900));
        assert!(b.insert(900));
    }
}
