//! Breadth-first cycle search with edge-class restrictions.
//!
//! §6 of the paper: within each strongly connected component we use BFS to
//! find a *short* cycle, since short witnesses make for readable
//! counterexamples. Anomaly classes restrict which edges may participate:
//!
//! * **G0**: only `ww` edges;
//! * **G1c**: `ww` and `wr`;
//! * **G-single**: *exactly one* `rw` edge — "we begin with a node in the
//!   read-write subgraph, follow exactly one read-write edge, then attempt
//!   to complete the cycle using only write-write and write-read edges";
//! * **G2-item**: at least one `rw` edge.
//!
//! A cycle is a vertex list `v0, v1, …, vk` with edges `v0→v1, …, vk→v0`.

use crate::csr::{BitSet, Csr, Scratch};
use crate::{DiGraph, EdgeMask};

/// Which cycles a search should accept.
#[derive(Debug, Clone, Copy)]
pub struct CycleSpec {
    /// Classes allowed on the first edge of the cycle.
    pub first: EdgeMask,
    /// Classes allowed on every subsequent edge.
    pub rest: EdgeMask,
}

impl CycleSpec {
    /// A uniform spec: every edge drawn from `mask`.
    pub fn uniform(mask: EdgeMask) -> Self {
        CycleSpec {
            first: mask,
            rest: mask,
        }
    }
}

/// Shortest cycle through `start`, using only `allowed` edges, confined to
/// vertices for which `in_scope` is true (pass `None` for the whole graph).
///
/// Returns the cycle as a vertex list starting at `start`, or `None`.
pub fn shortest_cycle_through(
    g: &DiGraph,
    start: u32,
    allowed: EdgeMask,
    in_scope: Option<&[bool]>,
) -> Option<Vec<u32>> {
    let ok = |v: u32| in_scope.is_none_or(|s| s[v as usize]);
    if !ok(start) {
        return None;
    }
    // Self-loop fast path.
    if g.edge_mask(start, start).intersects(allowed) {
        return Some(vec![start]);
    }
    bfs_path(g, start, start, allowed, in_scope).map(|mut path| {
        // bfs_path returns start..=start; drop the trailing start.
        path.pop();
        path
    })
}

/// BFS from `from` to `to` over `allowed` edges (path of length ≥ 1).
/// Returns the full vertex path `from, …, to`.
fn bfs_path(
    g: &DiGraph,
    from: u32,
    to: u32,
    allowed: EdgeMask,
    in_scope: Option<&[bool]>,
) -> Option<Vec<u32>> {
    let ok = |v: u32| in_scope.is_none_or(|s| s[v as usize]);
    let n = g.vertex_count();
    let mut pred: Vec<u32> = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();

    // Seed with from's successors so a path back to `from` itself works.
    for w in g.out_neighbors_masked(from, allowed) {
        if !ok(w) {
            continue;
        }
        if w == to {
            return Some(vec![from, to]);
        }
        if pred[w as usize] == u32::MAX {
            pred[w as usize] = from;
            queue.push_back(w);
        }
    }
    while let Some(v) = queue.pop_front() {
        for w in g.out_neighbors_masked(v, allowed) {
            if !ok(w) {
                continue;
            }
            if w == to {
                // Reconstruct.
                let mut path = vec![to, v];
                let mut cur = v;
                while pred[cur as usize] != u32::MAX && pred[cur as usize] != from {
                    cur = pred[cur as usize];
                    path.push(cur);
                }
                path.push(from);
                path.reverse();
                return Some(path);
            }
            if pred[w as usize] == u32::MAX && w != from {
                pred[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    None
}

/// BFS from `from` to `to` over `allowed` edges of the frozen CSR,
/// confined to `scope` when given. Returns the full vertex path
/// `from, …, to` (length ≥ 1).
///
/// Working memory comes from the caller: `visited` is sparsely cleared on
/// entry, `queue` is drained by index (no pop-front shifting), and
/// `parent` is *never* cleared — entries are only read for vertices
/// inserted into `visited` during this call.
#[allow(clippy::too_many_arguments)]
fn bfs_path_csr(
    g: &Csr,
    from: u32,
    to: u32,
    allowed: EdgeMask,
    scope: Option<&BitSet>,
    visited: &mut BitSet,
    parent: &mut [u32],
    queue: &mut Vec<u32>,
) -> Option<Vec<u32>> {
    let ok = |v: u32| scope.is_none_or(|s| s.contains(v));
    visited.clear();
    queue.clear();

    // Seed with from's successors so a path back to `from` itself works.
    for (w, m) in g.out_edges(from) {
        if !m.intersects(allowed) || !ok(w) {
            continue;
        }
        if w == to {
            return Some(vec![from, to]);
        }
        if visited.insert(w) {
            parent[w as usize] = from;
            queue.push(w);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for (w, m) in g.out_edges(v) {
            if !m.intersects(allowed) || !ok(w) {
                continue;
            }
            if w == to {
                // Reconstruct.
                let mut path = vec![to, v];
                let mut cur = v;
                while parent[cur as usize] != from {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.push(from);
                path.reverse();
                return Some(path);
            }
            if w != from && visited.insert(w) {
                parent[w as usize] = v;
                queue.push(w);
            }
        }
    }
    None
}

impl Csr {
    /// Shortest cycle through `start` over `allowed` edges, confined to
    /// the vertices of `scope` when given. CSR port of
    /// [`shortest_cycle_through`] with reusable `scratch`.
    pub fn shortest_cycle_through(
        &self,
        start: u32,
        allowed: EdgeMask,
        scope: Option<&[u32]>,
        scratch: &mut Scratch,
    ) -> Option<Vec<u32>> {
        scratch.ensure_bfs(self.vertex_count());
        let Scratch {
            visited,
            in_scope,
            parent,
            queue,
            ..
        } = scratch;
        let scoped = scope.map(|vs| {
            for &v in vs {
                in_scope.insert(v);
            }
            &*in_scope
        });
        let result = if scoped.is_some_and(|s| !s.contains(start)) {
            None
        } else if self.edge_mask(start, start).intersects(allowed) {
            // Self-loop fast path.
            Some(vec![start])
        } else {
            bfs_path_csr(self, start, start, allowed, scoped, visited, parent, queue).map(
                |mut path| {
                    // bfs returns start..=start; drop the trailing start.
                    path.pop();
                    path
                },
            )
        };
        in_scope.clear();
        result
    }

    /// Find a short cycle within `component` under `spec`. CSR port of
    /// [`find_cycle`] with reusable `scratch`.
    pub fn find_cycle(
        &self,
        component: &[u32],
        spec: CycleSpec,
        scratch: &mut Scratch,
    ) -> Option<Vec<u32>> {
        scratch.ensure_bfs(self.vertex_count());
        let Scratch {
            visited,
            in_scope,
            parent,
            queue,
            ..
        } = scratch;
        for &v in component {
            in_scope.insert(v);
        }
        let mut best: Option<Vec<u32>> = None;
        'vertices: for &v in component {
            // Try each first edge out of v.
            for (w, m) in self.out_edges(v) {
                if !m.intersects(spec.first) || !in_scope.contains(w) {
                    continue;
                }
                let cand = if w == v {
                    Some(vec![v])
                } else {
                    bfs_path_csr(
                        self,
                        w,
                        v,
                        spec.rest,
                        Some(in_scope),
                        visited,
                        parent,
                        queue,
                    )
                    .map(|mut rest| {
                        // rest = w..=v ; cycle = v, w, ..., (v)
                        rest.pop(); // drop trailing v
                        let mut cyc = Vec::with_capacity(rest.len() + 1);
                        cyc.push(v);
                        cyc.extend(rest);
                        cyc
                    })
                };
                if let Some(c) = cand {
                    if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                        best = Some(c);
                    }
                }
            }
            // A length-2 cycle is as short as non-self-loop cycles get;
            // stop early.
            if best.as_ref().is_some_and(|b| b.len() <= 2) {
                break 'vertices;
            }
        }
        in_scope.clear();
        best
    }

    /// The G-single style search over the frozen CSR: cycles whose first
    /// edge is drawn from `single` and whose remaining edges from `rest`.
    /// CSR port of [`find_cycle_with_single`] with reusable `scratch`;
    /// returns up to `limit` distinct cycles (keyed by vertex set).
    pub fn find_cycle_with_single(
        &self,
        component: &[u32],
        single: EdgeMask,
        rest: EdgeMask,
        limit: usize,
        scratch: &mut Scratch,
    ) -> Vec<Vec<u32>> {
        scratch.ensure_bfs(self.vertex_count());
        let Scratch {
            visited,
            in_scope,
            parent,
            queue,
            ..
        } = scratch;
        for &v in component {
            in_scope.insert(v);
        }
        let mut out = Vec::new();
        let mut seen: rustc_hash::FxHashSet<Vec<u32>> = rustc_hash::FxHashSet::default();
        'vertices: for &v in component {
            for (w, m) in self.out_edges(v) {
                if out.len() >= limit {
                    break 'vertices;
                }
                if !m.intersects(single) || !in_scope.contains(w) {
                    continue;
                }
                let cand = if w == v {
                    // self-loop via the single edge: a 1-cycle
                    Some(vec![v])
                } else {
                    bfs_path_csr(self, w, v, rest, Some(in_scope), visited, parent, queue).map(
                        |mut path| {
                            path.pop();
                            let mut cyc = Vec::with_capacity(path.len() + 1);
                            cyc.push(v);
                            cyc.extend(path);
                            cyc
                        },
                    )
                };
                if let Some(c) = cand {
                    let mut key = c.clone();
                    key.sort_unstable();
                    if seen.insert(key) {
                        out.push(c);
                    }
                }
            }
        }
        in_scope.clear();
        out
    }
}

/// Find a short cycle within `component` (a set of vertices) under `spec`.
///
/// Tries each vertex as a start; returns the first (hence shortest-per-
/// start, small) cycle found. The first edge must match `spec.first`, the
/// remainder `spec.rest`.
pub fn find_cycle(g: &DiGraph, component: &[u32], spec: CycleSpec) -> Option<Vec<u32>> {
    let n = g.vertex_count();
    let mut in_scope = vec![false; n];
    for &v in component {
        in_scope[v as usize] = true;
    }
    let mut best: Option<Vec<u32>> = None;
    for &v in component {
        // Try each first edge out of v.
        for (w, m) in g.out_edges(v) {
            if !m.intersects(spec.first) || !in_scope[*w as usize] {
                continue;
            }
            let cand = if *w == v {
                Some(vec![v])
            } else {
                bfs_path(g, *w, v, spec.rest, Some(&in_scope)).map(|mut rest| {
                    // rest = w..=v ; cycle = v, w, ..., (v)
                    rest.pop(); // drop trailing v
                    let mut cyc = Vec::with_capacity(rest.len() + 1);
                    cyc.push(v);
                    cyc.extend(rest);
                    cyc
                })
            };
            if let Some(c) = cand {
                if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                    best = Some(c);
                }
            }
        }
        // A length-2 cycle is as short as non-self-loop cycles get; stop early.
        if best.as_ref().is_some_and(|b| b.len() <= 2) {
            return best;
        }
    }
    best
}

/// The G-single style search: a cycle whose **first** edge is drawn from
/// `single` and whose remaining edges are drawn from `rest` (which should
/// not include `single`'s class for an "exactly one" guarantee).
///
/// Returns up to `limit` distinct cycles (keyed by their vertex sets).
pub fn find_cycle_with_single(
    g: &DiGraph,
    component: &[u32],
    single: EdgeMask,
    rest: EdgeMask,
    limit: usize,
) -> Vec<Vec<u32>> {
    let n = g.vertex_count();
    let mut in_scope = vec![false; n];
    for &v in component {
        in_scope[v as usize] = true;
    }
    let mut out = Vec::new();
    let mut seen: rustc_hash::FxHashSet<Vec<u32>> = rustc_hash::FxHashSet::default();
    for &v in component {
        if out.len() >= limit {
            break;
        }
        for (w, m) in g.out_edges(v) {
            if out.len() >= limit {
                break;
            }
            if !m.intersects(single) || !in_scope[*w as usize] {
                continue;
            }
            let cand = if *w == v {
                // self-loop via the single edge: a 1-cycle
                Some(vec![v])
            } else {
                bfs_path(g, *w, v, rest, Some(&in_scope)).map(|mut path| {
                    path.pop();
                    let mut cyc = Vec::with_capacity(path.len() + 1);
                    cyc.push(v);
                    cyc.extend(path);
                    cyc
                })
            };
            if let Some(c) = cand {
                let mut key = c.clone();
                key.sort_unstable();
                if seen.insert(key) {
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeClass, EdgeMask};

    fn g_from(edges: &[(u32, u32, EdgeClass)]) -> DiGraph {
        let mut g = DiGraph::default();
        for &(a, b, c) in edges {
            g.add_edge(a, b, c);
        }
        g
    }

    #[test]
    fn finds_two_cycle() {
        let g = g_from(&[(0, 1, EdgeClass::Ww), (1, 0, EdgeClass::Ww)]);
        let c = shortest_cycle_through(&g, 0, EdgeMask::WW, None).unwrap();
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn finds_self_loop() {
        let g = g_from(&[(2, 2, EdgeClass::Ww)]);
        let c = shortest_cycle_through(&g, 2, EdgeMask::WW, None).unwrap();
        assert_eq!(c, vec![2]);
    }

    #[test]
    fn respects_mask() {
        let g = g_from(&[(0, 1, EdgeClass::Ww), (1, 0, EdgeClass::Rw)]);
        assert!(shortest_cycle_through(&g, 0, EdgeMask::WW, None).is_none());
        assert!(shortest_cycle_through(&g, 0, EdgeMask::WW | EdgeMask::RW, None).is_some());
    }

    #[test]
    fn bfs_finds_shortest() {
        // Two cycles through 0: length 2 and length 4.
        let g = g_from(&[
            (0, 1, EdgeClass::Ww),
            (1, 0, EdgeClass::Ww),
            (0, 2, EdgeClass::Ww),
            (2, 3, EdgeClass::Ww),
            (3, 0, EdgeClass::Ww),
        ]);
        let c = shortest_cycle_through(&g, 0, EdgeMask::WW, None).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn scope_confines_search() {
        let g = g_from(&[
            (0, 1, EdgeClass::Ww),
            (1, 2, EdgeClass::Ww),
            (2, 0, EdgeClass::Ww),
        ]);
        let mut scope = vec![true; 3];
        scope[2] = false;
        assert!(shortest_cycle_through(&g, 0, EdgeMask::WW, Some(&scope)).is_none());
    }

    #[test]
    fn single_edge_search_exactly_one_rw() {
        // 0 -rw-> 1 -ww-> 2 -wr-> 0 : a G-single shape.
        let g = g_from(&[
            (0, 1, EdgeClass::Rw),
            (1, 2, EdgeClass::Ww),
            (2, 0, EdgeClass::Wr),
        ]);
        let comp = vec![0, 1, 2];
        let found =
            find_cycle_with_single(&g, &comp, EdgeMask::RW, EdgeMask::WW | EdgeMask::WR, 10);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0], vec![0, 1, 2]);
    }

    #[test]
    fn single_edge_search_rejects_two_rw() {
        // Needs two rw edges to close: not G-single.
        let g = g_from(&[(0, 1, EdgeClass::Rw), (1, 0, EdgeClass::Rw)]);
        let comp = vec![0, 1];
        let found =
            find_cycle_with_single(&g, &comp, EdgeMask::RW, EdgeMask::WW | EdgeMask::WR, 10);
        assert!(found.is_empty());
        // But allowing rw in the rest finds the G2 cycle.
        let g2 = find_cycle_with_single(
            &g,
            &comp,
            EdgeMask::RW,
            EdgeMask::WW | EdgeMask::WR | EdgeMask::RW,
            10,
        );
        assert_eq!(g2.len(), 1);
    }

    #[test]
    fn find_cycle_uniform() {
        let g = g_from(&[
            (0, 1, EdgeClass::Ww),
            (1, 2, EdgeClass::Ww),
            (2, 0, EdgeClass::Ww),
        ]);
        let c = find_cycle(&g, &[0, 1, 2], CycleSpec::uniform(EdgeMask::WW)).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn find_cycle_none_when_acyclic() {
        let g = g_from(&[(0, 1, EdgeClass::Ww), (1, 2, EdgeClass::Ww)]);
        assert!(find_cycle(&g, &[0, 1, 2], CycleSpec::uniform(EdgeMask::WW)).is_none());
    }

    #[test]
    fn limit_respected() {
        // Many G-single cycles sharing structure.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            let a = i * 2;
            let b = i * 2 + 1;
            edges.push((a, b, EdgeClass::Rw));
            edges.push((b, a, EdgeClass::Ww));
        }
        let g = g_from(&edges);
        let comp: Vec<u32> = (0..20).collect();
        let found = find_cycle_with_single(&g, &comp, EdgeMask::RW, EdgeMask::WW, 3);
        assert_eq!(found.len(), 3);
    }
}
