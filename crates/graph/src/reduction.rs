//! Transitive reduction of interval orders, and reachability closure.
//!
//! The real-time precedence order of a history is an *interval order*: each
//! transaction occupies the interval `[invoke, complete]`, and `T1 < T2` iff
//! `complete(T1) < invoke(T2)`. §5.1 of the paper notes its transitive
//! reduction can be computed in `O(n · p)` where `p` is the number of
//! concurrent processes; feeding the reduction (rather than the full order)
//! to the dependency graph keeps edge counts linear in practice.

use crate::{DiGraph, EdgeClass, EdgeMask};

/// A half-open activity interval: `invoke` and (optional) `complete` event
/// indices. Items with `complete = None` never finish and therefore precede
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Invocation position in the global event order.
    pub invoke: usize,
    /// Completion position, if the item completed.
    pub complete: Option<usize>,
}

/// Compute the transitive reduction of the interval order as an edge list
/// `(earlier, later)` over item indices.
///
/// `a → b` is kept iff `complete(a) < invoke(b)` and no item `c` fits wholly
/// between them (`complete(a) < invoke(c) ∧ complete(c) < invoke(b)`).
///
/// Cost: `O(n log n + E)` where `E` is the number of kept edges (bounded by
/// `n · p` for `p`-way concurrency).
pub fn interval_order_reduction(items: &[Interval]) -> Vec<(u32, u32)> {
    let n = items.len();
    let mut edges = Vec::new();
    if n == 0 {
        return edges;
    }

    // Completed items sorted by completion index.
    let mut by_complete: Vec<(usize, u32)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| it.complete.map(|c| (c, i as u32)))
        .collect();
    by_complete.sort_unstable();
    let completes: Vec<usize> = by_complete.iter().map(|&(c, _)| c).collect();

    // prefix_max_invoke[i] = max invoke among the first i+1 completed items
    // (sorted by completion). Used to find, for each b, the latest
    // invocation among items that complete before b's invocation.
    let mut prefix_max_invoke: Vec<usize> = Vec::with_capacity(by_complete.len());
    let mut running = 0usize;
    for &(_, idx) in &by_complete {
        running = running.max(items[idx as usize].invoke);
        prefix_max_invoke.push(running);
    }

    for (b_idx, b) in items.iter().enumerate() {
        // Items completing strictly before b.invoke.
        let k = completes.partition_point(|&c| c < b.invoke);
        if k == 0 {
            continue;
        }
        // Dominance threshold: any predecessor completing before `s` is
        // dominated by some item wholly inside the gap.
        let s = prefix_max_invoke[k - 1];
        // Keep predecessors a with s <= complete(a) < b.invoke.
        let lo = completes.partition_point(|&c| c < s);
        for &(_, a_idx) in &by_complete[lo..k] {
            if a_idx as usize != b_idx {
                edges.push((a_idx, b_idx as u32));
            }
        }
    }
    edges
}

/// All vertices reachable from `start` (inclusive) over `allowed` edges of
/// a frozen [`Csr`], with reusable `scratch` (CSR port of
/// [`transitive_closure_reachable`]).
pub fn csr_reachable(
    g: &crate::Csr,
    start: u32,
    allowed: EdgeMask,
    scratch: &mut crate::Scratch,
) -> Vec<u32> {
    scratch.ensure_bfs(g.vertex_count());
    let visited = &mut scratch.visited;
    let stack = &mut scratch.queue;
    visited.clear();
    stack.clear();
    stack.push(start);
    visited.insert(start);
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        for w in g.out_neighbors_masked(v, allowed) {
            if visited.insert(w) {
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All vertices reachable from `start` (inclusive) over `allowed` edges.
pub fn transitive_closure_reachable(g: &DiGraph, start: u32, allowed: EdgeMask) -> Vec<u32> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start as usize] = true;
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        for w in g.out_neighbors_masked(v, allowed) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Build a [`DiGraph`] carrying the interval-order reduction as edges of
/// class `class` (convenience for the realtime/process graphs).
pub fn interval_order_graph(items: &[Interval], class: EdgeClass) -> DiGraph {
    let mut g = DiGraph::with_vertices(items.len());
    for (a, b) in interval_order_reduction(items) {
        g.add_edge(a, b, class);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(invoke: usize, complete: usize) -> Interval {
        Interval {
            invoke,
            complete: Some(complete),
        }
    }

    /// Naive O(n³) reduction for cross-checking.
    fn naive(items: &[Interval]) -> Vec<(u32, u32)> {
        let precedes = |a: &Interval, b: &Interval| match a.complete {
            Some(c) => c < b.invoke,
            None => false,
        };
        let n = items.len();
        let mut out = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b || !precedes(&items[a], &items[b]) {
                    continue;
                }
                let dominated = (0..n).any(|c| {
                    c != a
                        && c != b
                        && items[a].complete.unwrap() < items[c].invoke
                        && precedes(&items[c], &items[b])
                });
                if !dominated {
                    out.push((a as u32, b as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn sequential_chain_reduces_to_links() {
        // t0: [0,1], t1: [2,3], t2: [4,5]
        let items = vec![iv(0, 1), iv(2, 3), iv(4, 5)];
        let mut e = interval_order_reduction(&items);
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn concurrent_items_have_no_edges() {
        let items = vec![iv(0, 10), iv(1, 9), iv(2, 8)];
        assert!(interval_order_reduction(&items).is_empty());
    }

    #[test]
    fn incomplete_items_precede_nothing_but_can_follow() {
        let items = vec![
            iv(0, 1),
            Interval {
                invoke: 5,
                complete: None,
            },
        ];
        let mut e = interval_order_reduction(&items);
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1)]);
    }

    #[test]
    fn matches_naive_on_pattern() {
        // p-way staggered pattern.
        let items = vec![
            iv(0, 3),
            iv(1, 2),
            iv(4, 7),
            iv(5, 6),
            iv(8, 9),
            Interval {
                invoke: 2,
                complete: None,
            },
        ];
        let mut fast = interval_order_reduction(&items);
        fast.sort_unstable();
        assert_eq!(fast, naive(&items));
    }

    #[test]
    fn reduction_preserves_reachability() {
        // Random-ish structured set; verify closure equality with naive full
        // order.
        let items = vec![
            iv(0, 2),
            iv(1, 4),
            iv(3, 6),
            iv(5, 8),
            iv(7, 10),
            iv(9, 12),
            iv(11, 13),
        ];
        let g = interval_order_graph(&items, EdgeClass::Realtime);
        // Full order edges:
        let precedes = |a: usize, b: usize| items[a].complete.unwrap() < items[b].invoke;
        for a in 0..items.len() {
            let reach = transitive_closure_reachable(&g, a as u32, EdgeMask::REALTIME);
            for b in 0..items.len() {
                let expected = precedes(a, b);
                let got = reach.contains(&(b as u32)) && a != b;
                assert_eq!(expected, got, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn closure_reachable_basic() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1, EdgeClass::Ww);
        g.add_edge(1, 2, EdgeClass::Ww);
        g.add_edge(3, 0, EdgeClass::Ww);
        let r = transitive_closure_reachable(&g, 0, EdgeMask::ALL);
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn csr_reachable_matches_legacy() {
        let mut g = DiGraph::with_vertices(6);
        for (a, b) in [(0, 1), (1, 2), (3, 0), (2, 4), (5, 5)] {
            g.add_edge(a, b, EdgeClass::Ww);
        }
        g.add_edge(1, 3, EdgeClass::Rw);
        let csr = g.freeze();
        let mut scratch = crate::Scratch::new();
        for start in 0..6u32 {
            for mask in [EdgeMask::ALL, EdgeMask::WW, EdgeMask::RW] {
                assert_eq!(
                    csr_reachable(&csr, start, mask, &mut scratch),
                    transitive_closure_reachable(&g, start, mask),
                    "start={start} mask={mask}"
                );
            }
        }
    }
}
