//! Property tests for the graph substrate: Tarjan against a naive
//! reachability oracle, and transitive-reduction soundness.

use elle_graph::{
    interval_order_reduction, tarjan_scc, transitive_closure_reachable, DiGraph, EdgeClass,
    EdgeMask, Interval,
};
use proptest::prelude::*;

/// Naive O(V·E) reachability matrix.
fn reachability(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<bool>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b as usize);
    }
    (0..n)
        .map(|s| {
            let mut stack = vec![s];
            let mut seen = vec![false; n];
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            seen
        })
        .collect()
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..n * 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two vertices share a Tarjan component iff they reach each other.
    #[test]
    fn tarjan_matches_mutual_reachability(edges in arb_edges(24)) {
        let n = 24;
        let mut g = DiGraph::with_vertices(n);
        for &(a, b) in &edges {
            g.add_edge(a, b, EdgeClass::Ww);
        }
        let reach = reachability(n, &edges);
        let sccs = tarjan_scc(&g, EdgeMask::ALL);
        // Component id per vertex (cyclic components only).
        let mut comp = vec![usize::MAX; n];
        for (i, scc) in sccs.iter().enumerate() {
            for &v in scc {
                comp[v as usize] = i;
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mutual = reach[a][b] && reach[b][a];
                let same = comp[a] != usize::MAX && comp[a] == comp[b];
                prop_assert_eq!(
                    mutual, same,
                    "a={} b={} mutual={} same={}", a, b, mutual, same
                );
            }
        }
        // Singleton components appear iff the vertex has a self-loop.
        for scc in &sccs {
            if scc.len() == 1 {
                let v = scc[0];
                prop_assert!(edges.contains(&(v, v)));
            }
        }
    }

    /// The interval-order reduction preserves exactly the order's
    /// reachability.
    #[test]
    fn interval_reduction_preserves_order(
        raw in prop::collection::vec((0usize..60, 1usize..10, prop::bool::ANY), 1..20)
    ) {
        // Build intervals; every so often one never completes.
        let items: Vec<Interval> = raw
            .iter()
            .map(|&(start, len, complete)| Interval {
                invoke: start,
                complete: complete.then_some(start + len),
            })
            .collect();
        let edges = interval_order_reduction(&items);
        let mut g = DiGraph::with_vertices(items.len());
        for (a, b) in &edges {
            g.add_edge(*a, *b, EdgeClass::Realtime);
        }
        for a in 0..items.len() {
            let reach = transitive_closure_reachable(&g, a as u32, EdgeMask::ALL);
            for b in 0..items.len() {
                if a == b { continue; }
                let precedes = match items[a].complete {
                    Some(c) => c < items[b].invoke,
                    None => false,
                };
                let reached = reach.contains(&(b as u32));
                prop_assert_eq!(precedes, reached, "a={} b={}", a, b);
            }
        }
    }

    /// Filtering by mask never invents edges.
    #[test]
    fn filtered_subgraph_is_subset(edges in arb_edges(12)) {
        let mut g = DiGraph::with_vertices(12);
        for (i, &(a, b)) in edges.iter().enumerate() {
            let class = match i % 3 {
                0 => EdgeClass::Ww,
                1 => EdgeClass::Wr,
                _ => EdgeClass::Rw,
            };
            g.add_edge(a, b, class);
        }
        let f = g.filtered(EdgeMask::WW | EdgeMask::RW);
        for (a, b, m) in f.edges() {
            prop_assert!(g.edge_mask(a, b).0 & m.0 == m.0);
            prop_assert!(!m.contains(EdgeClass::Wr));
        }
    }
}
