//! Differential property tests for the frozen CSR substrate: on random
//! multi-class graphs, the CSR ports of Tarjan and the BFS cycle searches
//! must agree with the legacy `DiGraph` reference implementations.
//!
//! Two regimes:
//!
//! * **sorted insertion** — edges are inserted in `(src, dst)` order, so
//!   the builder's adjacency order equals the CSR's sorted row order and
//!   both implementations traverse identically: results must be *exactly*
//!   equal, tie-breaking included;
//! * **arbitrary insertion** — traversal orders may differ, so we compare
//!   order-insensitive facts: the freeze round-trip, SCC partitions,
//!   cycle existence and shortest lengths, and the validity of every
//!   cycle the CSR search emits.

use elle_graph::{
    find_cycle, find_cycle_with_single, shortest_cycle_through, tarjan_scc, CycleSpec, DiGraph,
    EdgeBuf, EdgeClass, EdgeMask, Scratch,
};
use proptest::prelude::*;

const CLASSES: [EdgeClass; 4] = [
    EdgeClass::Ww,
    EdgeClass::Wr,
    EdgeClass::Rw,
    EdgeClass::Process,
];

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32, u8)>> {
    prop::collection::vec((0..n as u32, 0..n as u32, 0..4u8), 0..n * 4)
}

/// Merge duplicate `(src, dst)` pairs and sort lexicographically, so the
/// builder's insertion order matches the CSR's row order.
fn sorted_merged(edges: &[(u32, u32, u8)]) -> Vec<(u32, u32, EdgeMask)> {
    let mut map: std::collections::BTreeMap<(u32, u32), EdgeMask> =
        std::collections::BTreeMap::new();
    for &(a, b, c) in edges {
        let m = EdgeMask::of(CLASSES[c as usize]);
        map.entry((a, b))
            .and_modify(|e| *e = e.union(m))
            .or_insert(m);
    }
    map.into_iter().map(|((a, b), m)| (a, b, m)).collect()
}

fn graph_from(n: usize, edges: &[(u32, u32, EdgeMask)]) -> DiGraph {
    let mut g = DiGraph::with_vertices(n);
    for &(a, b, m) in edges {
        g.add_edge_mask(a, b, m);
    }
    g
}

const MASKS: [EdgeMask; 4] = [
    EdgeMask::ALL,
    EdgeMask::WW,
    EdgeMask(EdgeMask::WW.0 | EdgeMask::WR.0),
    EdgeMask(EdgeMask::WW.0 | EdgeMask::RW.0),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sorted insertion: every CSR algorithm equals its legacy
    /// counterpart exactly — same components, same cycles, same
    /// tie-breaking.
    #[test]
    fn csr_equals_legacy_under_sorted_insertion(raw in arb_edges(20)) {
        let n = 20;
        let edges = sorted_merged(&raw);
        let g = graph_from(n, &edges);
        let csr = g.freeze();
        let mut scratch = Scratch::new();

        for allowed in MASKS {
            // Tarjan: identical component lists, in identical order.
            let legacy = tarjan_scc(&g, allowed);
            let ported = csr.tarjan_scc(allowed, &mut scratch);
            prop_assert_eq!(&legacy, &ported, "tarjan mask={}", allowed);

            // Whole-graph shortest cycle through every vertex.
            for v in 0..n as u32 {
                let a = shortest_cycle_through(&g, v, allowed, None);
                let b = csr.shortest_cycle_through(v, allowed, None, &mut scratch);
                prop_assert_eq!(&a, &b, "shortest v={} mask={}", v, allowed);
            }

            // Per-SCC searches.
            for scc in &legacy {
                let a = find_cycle(&g, scc, CycleSpec::uniform(allowed));
                let b = csr.find_cycle(scc, CycleSpec::uniform(allowed), &mut scratch);
                prop_assert_eq!(&a, &b, "find_cycle mask={}", allowed);

                let rest = EdgeMask(allowed.0 & !EdgeMask::RW.0);
                let a = find_cycle_with_single(&g, scc, EdgeMask::RW, rest, 8);
                let b = csr.find_cycle_with_single(scc, EdgeMask::RW, rest, 8, &mut scratch);
                prop_assert_eq!(&a, &b, "single mask={}", allowed);
            }
        }
    }

    /// Arbitrary insertion: the freeze round-trips the edge set, and the
    /// algorithms agree on order-insensitive facts.
    #[test]
    fn csr_invariants_under_arbitrary_insertion(raw in arb_edges(16)) {
        let n = 16;
        let mut g = DiGraph::with_vertices(n);
        for &(a, b, c) in &raw {
            g.add_edge(a, b, CLASSES[c as usize]);
        }
        let csr = g.freeze();
        let mut scratch = Scratch::new();

        // Freeze round-trip: same edge set, same masks, rows sorted.
        prop_assert_eq!(g.edge_count(), csr.edge_count());
        let mut legacy_edges: Vec<_> = g.edges().collect();
        legacy_edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let csr_edges: Vec<_> = csr.edges().collect();
        prop_assert_eq!(legacy_edges, csr_edges);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(g.edge_mask(a, b), csr.edge_mask(a, b), "mask {}->{}", a, b);
            }
            let (in_srcs, _) = csr.in_row(a);
            for &s in in_srcs {
                prop_assert!(csr.edge_mask(s, a) != EdgeMask::NONE);
            }
        }

        for allowed in MASKS {
            // Same SCC partition (as sets of sorted components).
            let mut legacy = tarjan_scc(&g, allowed);
            let mut ported = csr.tarjan_scc(allowed, &mut scratch);
            legacy.sort();
            ported.sort();
            prop_assert_eq!(&legacy, &ported, "tarjan sets mask={}", allowed);

            // Shortest-cycle existence and length agree per vertex.
            for v in 0..n as u32 {
                let a = shortest_cycle_through(&g, v, allowed, None);
                let b = csr.shortest_cycle_through(v, allowed, None, &mut scratch);
                prop_assert_eq!(
                    a.as_ref().map(Vec::len),
                    b.as_ref().map(Vec::len),
                    "shortest length v={} mask={}", v, allowed
                );
            }

            for scc in &ported {
                // find_cycle: existence and minimality agree.
                let a = find_cycle(&g, scc, CycleSpec::uniform(allowed));
                let b = csr.find_cycle(scc, CycleSpec::uniform(allowed), &mut scratch);
                prop_assert_eq!(
                    a.as_ref().map(Vec::len),
                    b.as_ref().map(Vec::len),
                    "find_cycle length mask={}", allowed
                );

                // find_cycle_with_single: existence agrees, and every
                // emitted cycle is genuinely a single-first-edge cycle.
                let rest = EdgeMask(allowed.0 & !EdgeMask::RW.0);
                let a = find_cycle_with_single(&g, scc, EdgeMask::RW, rest, usize::MAX);
                let b = csr.find_cycle_with_single(scc, EdgeMask::RW, rest, usize::MAX, &mut scratch);
                prop_assert_eq!(a.is_empty(), b.is_empty(), "single existence mask={}", allowed);
                for cyc in &b {
                    for (i, &from) in cyc.iter().enumerate() {
                        let to = cyc[(i + 1) % cyc.len()];
                        let need = if i == 0 { EdgeMask::RW } else { rest };
                        prop_assert!(
                            g.edge_mask(from, to).intersects(need),
                            "invalid edge {}->{} in {:?}", from, to, cyc
                        );
                        prop_assert!(scc.contains(&from));
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental refreeze must be byte-identical to a full freeze, for
    /// any split of the edge stream into a frozen prefix and a dirty
    /// suffix.
    #[test]
    fn refreeze_matches_full_freeze(
        n in 1usize..24,
        edges in arb_edges(24),
        split_num in 0u32..=100,
    ) {
        let split = edges.len() * split_num as usize / 100;
        let mut g = DiGraph::with_vertices(n);
        for &(a, b, c) in &edges[..split] {
            g.add_edge(a % n as u32, b % n as u32, CLASSES[c as usize]);
        }
        let prev = g.freeze();
        let mut dirty = elle_graph::BitSet::new();
        dirty.ensure(n.max(24));
        for &(a, b, c) in &edges[split..] {
            g.add_edge(a % n as u32, b % n as u32, CLASSES[c as usize]);
            dirty.insert(a % n as u32);
        }
        let inc = g.refreeze(&prev, &dirty);
        let full = g.freeze();
        prop_assert_eq!(inc.vertex_count(), full.vertex_count());
        prop_assert_eq!(inc.edge_count(), full.edge_count());
        let ei: Vec<_> = inc.edges().collect();
        let ef: Vec<_> = full.edges().collect();
        prop_assert_eq!(ei, ef);
        for v in 0..full.vertex_count() as u32 {
            prop_assert_eq!(inc.in_row(v), full.in_row(v), "in_row {}", v);
            prop_assert_eq!(inc.out_row(v), full.out_row(v), "out_row {}", v);
        }
    }

    /// The hash-free sort-based build must be byte-identical to the
    /// legacy hash-indexed `DiGraph` + freeze over the same edge
    /// multiset — rows, masks, reverse rows, vertex growth semantics.
    #[test]
    fn edgebuf_build_matches_digraph_freeze(
        n in 0usize..24,
        edges in arb_edges(24),
    ) {
        let mut g = DiGraph::with_vertices(n);
        let mut buf = EdgeBuf::with_capacity(edges.len());
        for &(a, b, c) in &edges {
            g.add_edge(a, b, CLASSES[c as usize]);
            buf.push(a, b, EdgeMask::of(CLASSES[c as usize]));
        }
        prop_assert_eq!(buf.len(), edges.len());
        let hash_built = g.freeze();
        let sort_built = buf.build(n);
        prop_assert!(buf.is_empty(), "build consumes the buffer");
        prop_assert_eq!(hash_built.vertex_count(), sort_built.vertex_count());
        prop_assert_eq!(hash_built.edge_count(), sort_built.edge_count());
        let eh: Vec<_> = hash_built.edges().collect();
        let es: Vec<_> = sort_built.edges().collect();
        prop_assert_eq!(eh, es);
        for v in 0..hash_built.vertex_count() as u32 {
            prop_assert_eq!(hash_built.out_row(v), sort_built.out_row(v), "out_row {}", v);
            prop_assert_eq!(hash_built.in_row(v), sort_built.in_row(v), "in_row {}", v);
        }
    }

    /// A Tarjan pass restricted to the cyclic region of a superset mask
    /// must find exactly the components of an unrestricted pass.
    #[test]
    fn region_restricted_tarjan_matches_full(
        n in 1usize..24,
        edges in arb_edges(24),
    ) {
        let merged = sorted_merged(&edges);
        let g = graph_from(n.max(24), &merged);
        let csr = g.freeze();
        let mut scratch = Scratch::new();
        // Certificate region: union of ALL-mask cyclic SCCs.
        let cert = csr.tarjan_scc(EdgeMask::ALL, &mut scratch);
        let mut region: Vec<u32> = cert.iter().flatten().copied().collect();
        region.sort_unstable();
        for mask in MASKS {
            let mut full = csr.tarjan_scc(mask, &mut scratch);
            let mut within = csr.tarjan_scc_within(mask, &region, &mut scratch);
            full.sort();
            within.sort();
            prop_assert_eq!(full, within, "mask={}", mask);
        }
        if cert.is_empty() {
            // Empty region: nothing to find under any sub-mask.
            for mask in MASKS {
                prop_assert!(csr.tarjan_scc(mask, &mut scratch).is_empty());
            }
        }
    }
}
