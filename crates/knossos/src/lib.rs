//! # elle-knossos
//!
//! The baseline the paper compares Elle against (§7.5, Figure 4): a
//! Knossos-style **strict serializability** checker in the Wing & Gong /
//! WGL tradition.
//!
//! Strict-1SR is linearizability where each operation is a transaction and
//! the linearizable object is a map (§1 of the paper). The checker searches
//! for a *linearization*: a total order over committed transactions (with
//! indeterminate transactions optionally included) such that
//!
//! * real-time order is respected: if `T1` completed before `T2` was
//!   invoked, `T1` linearizes first;
//! * every transaction's reads match the state produced by its prefix.
//!
//! The search is a DFS with memoization on `(applied set, store state)`
//! pairs — Lowe's refinement of WGL. It remains fundamentally exponential
//! in concurrency: with `c` concurrent transactions there are up to `c!`
//! interleavings to consider, which is exactly the blow-up Figure 4 plots.
//! A configurable time budget bounds runs (the paper used 100 seconds).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use elle_history::{Elem, History, Key, Mop, ReadValue, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Checker options.
#[derive(Debug, Clone, Copy)]
pub struct KnossosOptions {
    /// Abort the search after this long (paper: 100 s).
    pub time_budget: Duration,
    /// Abort after exploring this many states (memory guard).
    pub max_states: usize,
}

impl Default for KnossosOptions {
    fn default() -> Self {
        KnossosOptions {
            time_budget: Duration::from_secs(100),
            max_states: 50_000_000,
        }
    }
}

impl KnossosOptions {
    /// Set the time budget.
    pub fn with_budget(mut self, d: Duration) -> Self {
        self.time_budget = d;
        self
    }

    /// Set the explored-state cap.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }
}

/// The verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnossosOutcome {
    /// A valid linearization exists: strict serializable.
    Ok,
    /// No linearization exists: strict serializability is violated.
    Violation,
    /// The search exhausted its time or state budget.
    Unknown,
}

/// Outcome plus search statistics.
#[derive(Debug, Clone, Copy)]
pub struct KnossosResult {
    /// The verdict.
    pub outcome: KnossosOutcome,
    /// Distinct `(applied set, state)` pairs explored.
    pub states_explored: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Map-of-objects state with an incrementally maintained hash.
#[derive(Debug, Default)]
struct MapState {
    lists: FxHashMap<Key, Vec<Elem>>,
    registers: FxHashMap<Key, Option<Elem>>,
    hash: u64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl MapState {
    fn list_hash(key: Key, v: &[Elem]) -> u64 {
        let mut h = splitmix(key.0 ^ 0x11);
        for e in v {
            h = splitmix(h ^ e.0);
        }
        h
    }

    fn reg_hash(key: Key, v: Option<Elem>) -> u64 {
        splitmix(key.0 ^ 0x22 ^ v.map_or(u64::MAX, |e| e.0))
    }

    fn append(&mut self, key: Key, e: Elem) {
        let list = self.lists.entry(key).or_default();
        self.hash ^= Self::list_hash(key, list);
        list.push(e);
        let list = &self.lists[&key];
        self.hash ^= Self::list_hash(key, list);
    }

    fn unappend(&mut self, key: Key) {
        let list = self.lists.get_mut(&key).expect("undo of applied append");
        self.hash ^= Self::list_hash(key, list);
        list.pop();
        let list = &self.lists[&key];
        self.hash ^= Self::list_hash(key, list);
    }

    fn write_reg(&mut self, key: Key, v: Option<Elem>) -> Option<Elem> {
        let slot = self.registers.entry(key).or_insert(None);
        let prev = *slot;
        self.hash ^= Self::reg_hash(key, prev);
        *slot = v;
        self.hash ^= Self::reg_hash(key, v);
        prev
    }

    fn list(&self, key: Key) -> &[Elem] {
        self.lists.get(&key).map_or(&[], |v| v.as_slice())
    }

    fn register(&self, key: Key) -> Option<Elem> {
        self.registers.get(&key).copied().flatten()
    }
}

/// Undo record for one transaction application.
enum Undo {
    Append(Key),
    Register(Key, Option<Elem>),
}

/// A candidate transaction in the search.
struct Cand {
    mops: Vec<Mop>,
    /// Must this transaction appear (committed) or may it be dropped
    /// (indeterminate)?
    required: bool,
    invoke: usize,
    complete: Option<usize>,
}

/// Check a history for strict serializability.
pub fn check(history: &History, opts: KnossosOptions) -> KnossosResult {
    let started = Instant::now();

    // Candidates: committed (required) + indeterminate (optional).
    let cands: Vec<Cand> = history
        .txns()
        .iter()
        .filter(|t| t.status != TxnStatus::Aborted)
        .map(|t| Cand {
            mops: t.mops.clone(),
            required: t.status == TxnStatus::Committed,
            invoke: t.invoke_index,
            complete: t.complete_index,
        })
        .collect();
    let n = cands.len();
    let required_total = cands.iter().filter(|c| c.required).count();

    // Required txns sorted by completion, for the enabledness frontier:
    // a txn is enabled only once every required txn completing before its
    // invocation has been applied.
    let mut by_complete: Vec<(usize, usize)> = cands
        .iter()
        .enumerate()
        .filter(|&(_i, c)| c.required)
        .map(|(i, c)| (c.complete.expect("ok txns complete"), i))
        .collect();
    by_complete.sort_unstable();
    // preds[i] = number of required txns completing before cands[i].invoke.
    let preds: Vec<usize> = cands
        .iter()
        .map(|c| by_complete.partition_point(|(comp, _)| *comp < c.invoke))
        .collect();
    // position of each required txn in by_complete order
    let mut pos_in_complete: FxHashMap<usize, usize> = FxHashMap::default();
    for (pos, (_, i)) in by_complete.iter().enumerate() {
        pos_in_complete.insert(*i, pos);
    }

    let mut state = MapState::default();
    let mut applied = vec![false; n];
    let mut applied_hash: u64 = 0;
    let mut applied_required = 0usize;
    // Contiguous prefix of by_complete that is applied (monotone frontier).
    let mut complete_flags = vec![false; by_complete.len()];
    let mut frontier = 0usize;

    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut states = 0usize;
    let deadline = started + opts.time_budget;

    // Iterative DFS: each frame holds the txn applied to enter it and the
    // next candidate index to try.
    type Frame = (Option<(usize, Vec<Undo>)>, usize);
    let mut stack: Vec<Frame> = vec![(None, 0)];
    let mut timed_out = false;

    while !stack.is_empty() {
        if applied_required == required_total {
            return KnossosResult {
                outcome: KnossosOutcome::Ok,
                states_explored: states,
                elapsed: started.elapsed(),
            };
        }
        if states.is_multiple_of(1024) && (Instant::now() > deadline || states > opts.max_states) {
            timed_out = true;
            break;
        }

        let top = stack.len() - 1;
        let start = stack[top].1;
        let mut advanced = false;
        for i in start..n {
            if applied[i] {
                continue;
            }
            // Real-time enabledness: all required predecessors applied.
            if frontier < preds[i] {
                continue;
            }
            // Try to apply txn i.
            if let Some(undo) = try_apply(&mut state, &cands[i].mops) {
                // Memoize.
                applied[i] = true;
                applied_hash ^= splitmix(i as u64 ^ 0xABCD);
                let memo = applied_hash ^ state.hash;
                if !seen.insert(memo) {
                    // Already explored this configuration.
                    applied[i] = false;
                    applied_hash ^= splitmix(i as u64 ^ 0xABCD);
                    undo_apply(&mut state, undo);
                    continue;
                }
                states += 1;
                if cands[i].required {
                    applied_required += 1;
                    let pos = pos_in_complete[&i];
                    complete_flags[pos] = true;
                    while frontier < complete_flags.len() && complete_flags[frontier] {
                        frontier += 1;
                    }
                }
                // Descend.
                stack[top].1 = i + 1;
                stack.push((Some((i, undo)), 0));
                advanced = true;
                break;
            }
        }
        if advanced {
            continue;
        }
        // Exhausted this frame: backtrack.
        let (entry, _) = stack.pop().expect("frame exists");
        if let Some((i, undo)) = entry {
            applied[i] = false;
            applied_hash ^= splitmix(i as u64 ^ 0xABCD);
            if cands[i].required {
                applied_required -= 1;
                let pos = pos_in_complete[&i];
                complete_flags[pos] = false;
                frontier = frontier.min(pos);
            }
            undo_apply(&mut state, undo);
        }
    }

    KnossosResult {
        outcome: if timed_out {
            KnossosOutcome::Unknown
        } else {
            KnossosOutcome::Violation
        },
        states_explored: states,
        elapsed: started.elapsed(),
    }
}

/// Apply a transaction if its reads are consistent with `state`; returns
/// the undo log, or `None` if a read mismatches (the transaction cannot
/// linearize here).
fn try_apply(state: &mut MapState, mops: &[Mop]) -> Option<Vec<Undo>> {
    let mut undo: Vec<Undo> = Vec::new();
    for m in mops {
        let ok = match m {
            Mop::Append { key, elem } => {
                state.append(*key, *elem);
                undo.push(Undo::Append(*key));
                true
            }
            Mop::Write { key, elem } => {
                let prev = state.write_reg(*key, Some(*elem));
                undo.push(Undo::Register(*key, prev));
                true
            }
            Mop::Read { value: None, .. } => true, // unconstrained
            Mop::Read {
                key,
                value: Some(ReadValue::List(v)),
            } => state.list(*key) == v.as_slice(),
            Mop::Read {
                key,
                value: Some(ReadValue::Register(v)),
            } => state.register(*key) == *v,
            // Counters/sets are not part of the baseline's model (the
            // paper's comparison uses list histories).
            _ => false,
        };
        if !ok {
            undo_apply(state, undo);
            return None;
        }
    }
    Some(undo)
}

fn undo_apply(state: &mut MapState, undo: Vec<Undo>) {
    for u in undo.into_iter().rev() {
        match u {
            Undo::Append(k) => state.unappend(k),
            Undo::Register(k, prev) => {
                state.write_reg(k, prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    fn opts() -> KnossosOptions {
        KnossosOptions::default().with_budget(Duration::from_secs(5))
    }

    #[test]
    fn serial_history_ok() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn concurrent_reorderable_ok() {
        // Two concurrent appends observed in one order.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(10)).commit();
        b.txn(1).append(1, 2).at(1, Some(9)).commit();
        b.txn(2).read_list(1, [2, 1]).at(11, Some(12)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn realtime_violation_detected() {
        // T0 completes before T1 begins, yet T1 reads the initial state.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).read_list(1, []).at(2, Some(3)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn stale_read_ok_when_concurrent() {
        // Same as above but overlapping: T1 may linearize first.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(5)).commit();
        b.txn(1).read_list(1, []).at(1, Some(4)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn read_skew_violation() {
        // G-single: T2 reads x before T1's append but y after T1's append.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(2, 1).at(0, Some(10)).commit();
        b.txn(1)
            .read_list(1, [])
            .read_list(2, [1])
            .at(1, Some(9))
            .commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn indeterminate_txns_may_be_dropped() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, None).indeterminate();
        b.txn(1).read_list(1, []).at(1, Some(2)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn indeterminate_txns_may_be_kept() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, None).indeterminate();
        b.txn(1).read_list(1, [1]).at(1, Some(2)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn aborted_txns_excluded() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 9).abort();
        b.txn(1).read_list(1, []).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn aborted_read_is_violation() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 9).abort();
        b.txn(1).read_list(1, [9]).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn register_histories_supported() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).commit();
        b.txn(1).read_register(1, Some(5)).write(1, 6).commit();
        b.txn(2).read_register(1, Some(6)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
        // And a violation:
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).at(0, Some(1)).commit();
        b.txn(1).read_register(1, None).at(2, Some(3)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn timeout_reports_unknown() {
        // Many concurrent blind appends with an impossible final read far
        // in the future can take a while; use a zero budget to force
        // Unknown deterministically.
        let mut b = HistoryBuilder::new();
        for i in 0..12u64 {
            b.txn(i as u32).append(1, i + 1).at(0, Some(100)).commit();
        }
        let o = KnossosOptions::default().with_budget(Duration::from_nanos(0));
        let r = check(&b.build(), o);
        assert_eq!(r.outcome, KnossosOutcome::Unknown);
    }

    #[test]
    fn empty_history_ok() {
        let r = check(&History::default(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn long_serial_chain_is_linear_work() {
        // 500 strictly sequential txns: the realtime frontier admits one
        // candidate at a time, so the search is linear.
        let mut b = HistoryBuilder::new();
        let mut expect = Vec::new();
        for i in 0..500u64 {
            expect.push(i + 1);
            b.txn(0)
                .append(1, i + 1)
                .read_list(1, expect.iter().copied())
                .commit();
        }
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
        assert!(r.states_explored <= 501, "{} states", r.states_explored);
    }

    #[test]
    fn mixed_register_and_list_history() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(2, 7).commit();
        b.txn(1)
            .read_list(1, [1])
            .read_register(2, Some(7))
            .write(2, 8)
            .commit();
        b.txn(2).read_register(2, Some(8)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
        // And a contradiction across the two datatypes:
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(2, 7).at(0, Some(10)).commit();
        b.txn(1)
            .read_list(1, [1]) // saw the append...
            .read_register(2, None) // ...but not the register write
            .at(1, Some(9))
            .commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn realtime_constraint_spans_processes() {
        // T0 (p0) completes before T1 (p1) invokes; a linearization
        // putting T1 first is not allowed.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).append(1, 2).at(2, Some(3)).commit();
        b.txn(2).read_list(1, [2, 1]).at(4, Some(5)).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Violation);
    }

    #[test]
    fn unconstrained_reads_do_not_constrain() {
        // A read with no observed value (e.g. from an info txn) is a free
        // variable.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).mop(Mop::read(1)).at(2, None).indeterminate();
        b.txn(2).read_list(1, [1]).commit();
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
    }

    #[test]
    fn states_counter_reports_work() {
        let mut b = HistoryBuilder::new();
        for i in 0..6u64 {
            b.txn(i as u32).append(1, i + 1).at(0, Some(100)).commit();
        }
        let r = check(&b.build(), opts());
        assert_eq!(r.outcome, KnossosOutcome::Ok);
        assert!(r.states_explored >= 6);
        assert!(r.elapsed.as_secs() < 5);
    }
}
