//! # elle-gen
//!
//! Workload generation in the style of the paper's evaluation (§7):
//! random transactions of 1–10 micro-operations over a rotating pool of
//! keys, with unique write arguments — maintaining the **recoverability**
//! and **traceability** properties Elle's inference relies on:
//!
//! > "In all our tests, we generated transactions of varying length
//! > (typically 1-10 operations) comprised of random reads and writes over
//! > a handful of objects. We performed anywhere from one to 1024 writes
//! > per object; fewer writes per object stresses codepaths involved in
//! > the creation of fresh database objects, and more writes per object
//! > allows the detection of anomalies over longer time periods."
//!
//! [`Workload`] implements [`elle_dbsim::TxnSource`], so it can drive the
//! simulator directly; [`run_workload`] wires the two together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use elle_dbsim::{DbConfig, ObjectKind, SimDb, TxnSource};
use elle_history::{History, Mop, PairingError, ProcessId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Total transactions to generate.
    pub n_txns: usize,
    /// Minimum micro-ops per transaction.
    pub min_txn_len: usize,
    /// Maximum micro-ops per transaction (inclusive).
    pub max_txn_len: usize,
    /// Keys concurrently active ("a handful of objects at any point in
    /// time" — the paper's performance runs use 100).
    pub active_keys: usize,
    /// Writes per key before it retires and a fresh key replaces it
    /// (1–1024 in the paper).
    pub writes_per_key: u64,
    /// Probability a micro-op is a read.
    pub read_prob: f64,
    /// Object kind to generate.
    pub kind: ObjectKind,
    /// Generator RNG seed (independent of the simulator's).
    pub seed: u64,
    /// After the main body, issue one read per active key (a quiescent
    /// "final read" pass — a standard Jepsen trick that shrinks the
    /// unobserved tail of each version order, §3: "so long as histories
    /// are long and include reads every so often, the unknown fraction of
    /// a version order can be made relatively small").
    pub final_reads: bool,
}

impl GenParams {
    /// The paper's performance-experiment shape (§7.5): 1–5 ops per txn,
    /// 100 active keys, 100 appends per key.
    pub fn paper_perf(n_txns: usize) -> Self {
        GenParams {
            n_txns,
            min_txn_len: 1,
            max_txn_len: 5,
            active_keys: 100,
            writes_per_key: 100,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed: 0xE11E,
            final_reads: false,
        }
    }

    /// A small contended workload: few keys, high write rate — good at
    /// provoking anomalies quickly.
    pub fn contended(n_txns: usize, kind: ObjectKind) -> Self {
        GenParams {
            n_txns,
            min_txn_len: 1,
            max_txn_len: 4,
            active_keys: 5,
            writes_per_key: 64,
            read_prob: 0.5,
            kind,
            seed: 0xE11E,
            final_reads: false,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style transaction-count override.
    pub fn with_txns(mut self, n: usize) -> Self {
        self.n_txns = n;
        self
    }

    /// Builder-style: enable the final quiescent read pass.
    pub fn with_final_reads(mut self, on: bool) -> Self {
        self.final_reads = on;
        self
    }
}

/// A random transaction source maintaining unique write arguments and key
/// rotation.
#[derive(Debug)]
pub struct Workload {
    params: GenParams,
    rng: SmallRng,
    /// Next unique element.
    next_elem: u64,
    /// Next fresh key id.
    next_key: u64,
    /// Active keys with their remaining write budget.
    active: Vec<(u64, u64)>,
    /// Transactions handed out so far.
    generated: usize,
}

impl Workload {
    /// Create a workload from parameters.
    pub fn new(params: GenParams) -> Self {
        let n = params.active_keys.max(1) as u64;
        Workload {
            rng: SmallRng::seed_from_u64(params.seed),
            next_elem: 1,
            next_key: n,
            active: (0..n).map(|k| (k, params.writes_per_key.max(1))).collect(),
            generated: 0,
            params,
        }
    }

    /// The parameters this workload was built from.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    fn fresh_elem(&mut self) -> u64 {
        let e = self.next_elem;
        self.next_elem += 1;
        e
    }

    fn gen_mop(&mut self) -> Mop {
        let slot = self.rng.gen_range(0..self.active.len());
        let (key, _) = self.active[slot];
        if self.rng.gen_bool(self.params.read_prob) {
            Mop::read(key)
        } else {
            // Consume write budget; retire exhausted keys.
            let budget = &mut self.active[slot].1;
            *budget -= 1;
            if *budget == 0 {
                let fresh = self.next_key;
                self.next_key += 1;
                self.active[slot] = (fresh, self.params.writes_per_key.max(1));
            }
            match self.params.kind {
                ObjectKind::ListAppend => Mop::append(key, self.fresh_elem()),
                ObjectKind::Register => Mop::write(key, self.fresh_elem()),
                ObjectKind::Counter => Mop::increment(key, 1),
                ObjectKind::Set => Mop::add_to_set(key, self.fresh_elem()),
            }
        }
    }

    /// Generate one transaction (used directly by tests; the simulator
    /// calls through [`TxnSource`]).
    pub fn gen_txn(&mut self) -> Vec<Mop> {
        let len = self
            .rng
            .gen_range(self.params.min_txn_len.max(1)..=self.params.max_txn_len.max(1));
        (0..len).map(|_| self.gen_mop()).collect()
    }
}

impl TxnSource for Workload {
    fn next_txn(&mut self, _process: ProcessId) -> Option<Vec<Mop>> {
        if self.generated >= self.params.n_txns {
            // Quiescent final reads: one per still-active key.
            if self.params.final_reads {
                let idx = self.generated - self.params.n_txns;
                if idx < self.active.len() {
                    self.generated += 1;
                    return Some(vec![Mop::read(self.active[idx].0)]);
                }
            }
            return None;
        }
        self.generated += 1;
        Some(self.gen_txn())
    }
}

/// Generate a workload and run it against a simulated database.
pub fn run_workload(params: GenParams, db: DbConfig) -> Result<History, PairingError> {
    let mut w = Workload::new(params);
    SimDb::new(db).run_history(&mut w)
}

/// Generate a workload and run it, returning the raw event log — the
/// stream-shaped output (`EventLog` → NDJSON, or fed event-by-event to
/// an incremental checker).
pub fn run_workload_log(params: GenParams, db: DbConfig) -> elle_history::EventLog {
    let mut w = Workload::new(params);
    SimDb::new(db).run(&mut w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_dbsim::IsolationLevel;
    use elle_history::duplicate_written_elems;

    #[test]
    fn unique_write_arguments() {
        let params = GenParams::contended(200, ObjectKind::ListAppend);
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend);
        let h = run_workload(params, db).unwrap();
        assert_eq!(h.len(), 200);
        assert!(duplicate_written_elems(&h).is_empty());
    }

    #[test]
    fn txn_lengths_respect_bounds() {
        let mut w = Workload::new(GenParams {
            min_txn_len: 2,
            max_txn_len: 6,
            ..GenParams::paper_perf(0)
        });
        for _ in 0..100 {
            let t = w.gen_txn();
            assert!((2..=6).contains(&t.len()), "len {}", t.len());
        }
    }

    #[test]
    fn keys_rotate_after_budget() {
        let params = GenParams {
            n_txns: 500,
            min_txn_len: 1,
            max_txn_len: 1,
            active_keys: 2,
            writes_per_key: 5,
            read_prob: 0.0,
            kind: ObjectKind::ListAppend,
            seed: 1,
            final_reads: false,
        };
        let mut w = Workload::new(params);
        let mut keys = std::collections::BTreeSet::new();
        for _ in 0..500 {
            for m in w.gen_txn() {
                keys.insert(m.key().0);
            }
        }
        // 500 writes at 5 per key across 2 slots → ~100 distinct keys.
        assert!(keys.len() > 50, "only {} keys", keys.len());
    }

    #[test]
    fn deterministic_by_seed() {
        let p = GenParams::paper_perf(50).with_seed(9);
        let mut a = Workload::new(p);
        let mut b = Workload::new(p);
        for _ in 0..50 {
            assert_eq!(a.gen_txn(), b.gen_txn());
        }
    }

    #[test]
    fn respects_kind() {
        for (kind, pred) in [
            (
                ObjectKind::Register,
                (|m: &Mop| matches!(m, Mop::Write { .. })) as fn(&Mop) -> bool,
            ),
            (ObjectKind::Counter, |m: &Mop| {
                matches!(m, Mop::Increment { .. })
            }),
            (ObjectKind::Set, |m: &Mop| matches!(m, Mop::AddToSet { .. })),
            (ObjectKind::ListAppend, |m: &Mop| {
                matches!(m, Mop::Append { .. })
            }),
        ] {
            let mut w = Workload::new(GenParams {
                read_prob: 0.0,
                kind,
                ..GenParams::contended(10, kind)
            });
            let t = w.gen_txn();
            assert!(t.iter().all(pred), "{kind:?}: {t:?}");
        }
    }

    #[test]
    fn final_reads_cover_active_keys() {
        let params = GenParams {
            n_txns: 5,
            active_keys: 3,
            final_reads: true,
            ..GenParams::contended(5, ObjectKind::ListAppend)
        };
        let mut w = Workload::new(params);
        let p = ProcessId(0);
        let mut txns = Vec::new();
        while let Some(t) = w.next_txn(p) {
            txns.push(t);
        }
        assert_eq!(txns.len(), 5 + 3);
        for t in &txns[5..] {
            assert_eq!(t.len(), 1);
            assert!(t[0].is_read());
        }
    }

    #[test]
    fn source_exhausts_after_n_txns() {
        let mut w = Workload::new(GenParams::contended(3, ObjectKind::ListAppend));
        let p = ProcessId(0);
        assert!(w.next_txn(p).is_some());
        assert!(w.next_txn(p).is_some());
        assert!(w.next_txn(p).is_some());
        assert!(w.next_txn(p).is_none());
        assert!(w.next_txn(p).is_none());
    }
}
