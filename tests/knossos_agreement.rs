//! Cross-validation of the two checkers: on strict-serializable histories
//! both stay silent; on histories with injected strictness violations both
//! object. (Elle additionally classifies *which* anomaly — Knossos only
//! says yes/no, which is §1's "informative" gap.)

use elle::prelude::*;
use std::time::Duration;

fn knossos(h: &History) -> KnossosOutcome {
    elle::knossos::check(
        h,
        KnossosOptions::default().with_budget(Duration::from_secs(10)),
    )
    .outcome
}

fn elle_ok(h: &History) -> bool {
    Checker::new(CheckOptions::strict_serializable())
        .check(h)
        .ok()
}

fn small_run(iso: IsolationLevel, seed: u64) -> History {
    // Low concurrency keeps Knossos' search tractable.
    let params = GenParams {
        n_txns: 120,
        min_txn_len: 1,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 32,
        read_prob: 0.5,
        kind: ObjectKind::ListAppend,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(iso, ObjectKind::ListAppend)
        .with_processes(3)
        .with_seed(seed);
    run_workload(params, db).unwrap()
}

#[test]
fn agree_on_clean_histories() {
    for seed in 1..=5 {
        let h = small_run(IsolationLevel::StrictSerializable, seed);
        assert!(elle_ok(&h), "elle flagged a strict-serializable history");
        assert_eq!(
            knossos(&h),
            KnossosOutcome::Ok,
            "knossos flagged a strict-serializable history (seed {seed})"
        );
    }
}

#[test]
fn agree_on_clean_histories_with_faults() {
    for seed in 1..=3 {
        let params = GenParams {
            n_txns: 100,
            min_txn_len: 1,
            max_txn_len: 3,
            active_keys: 4,
            writes_per_key: 32,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(3)
            .with_seed(seed)
            .with_faults(FaultPlan {
                info_prob: 0.1,
                server_abort_prob: 0.05,
                crash_on_info: true,
            });
        let h = run_workload(params, db).unwrap();
        assert!(elle_ok(&h), "seed {seed}");
        assert_eq!(knossos(&h), KnossosOutcome::Ok, "seed {seed}");
    }
}

#[test]
fn both_reject_injected_violations() {
    // Hand-built realtime violation (the append is witnessed by a later
    // read, giving Elle the version order it needs).
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).at(0, Some(1)).commit();
    b.txn(1).read_list(1, []).at(2, Some(3)).commit();
    b.txn(2).read_list(1, [1]).at(4, Some(5)).commit();
    let h = b.build();
    assert!(!elle_ok(&h));
    assert_eq!(knossos(&h), KnossosOutcome::Violation);

    // Read skew. Note the trailing read of key 1: without it, the missed
    // append's position in key 1's version order would be unknowable and
    // *no sound checker working from list observations* could object —
    // Elle correctly stays silent on that variant (soundness before
    // completeness, §4.3.2).
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(2, 1).at(0, Some(10)).commit();
    b.txn(1)
        .read_list(1, [])
        .read_list(2, [1])
        .at(1, Some(9))
        .commit();
    b.txn(2).read_list(1, [1]).at(11, Some(12)).commit();
    let h = b.build();
    assert!(!elle_ok(&h));
    assert_eq!(knossos(&h), KnossosOutcome::Violation);

    // And the undetectable variant: Elle is silent, Knossos (exhaustive)
    // objects — the completeness gap the paper accepts by design.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(2, 1).at(0, Some(10)).commit();
    b.txn(1)
        .read_list(1, [])
        .read_list(2, [1])
        .at(1, Some(9))
        .commit();
    let h = b.build();
    assert!(elle_ok(&h), "unobservable miss should not be reported");
    assert_eq!(knossos(&h), KnossosOutcome::Violation);
}

#[test]
fn both_reject_simulated_bug_histories() {
    // TiDB-style retries break strict serializability; both checkers see
    // it (on a small, Knossos-tractable run with enough contention).
    let mut rejected = 0;
    for seed in 1..=12 {
        let params = GenParams {
            n_txns: 120,
            min_txn_len: 2,
            max_txn_len: 4,
            active_keys: 2,
            writes_per_key: 64,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(3)
            .with_seed(seed)
            .with_bug(Bug::SilentRetry);
        let h = run_workload(params, db).unwrap();
        let e = elle_ok(&h);
        let k = knossos(&h);
        if !e {
            // Elle found something; Knossos must not claim Ok
            // (soundness of both — Unknown is acceptable on blowup).
            assert_ne!(
                k,
                KnossosOutcome::Ok,
                "seed {seed}: elle rejected but knossos accepted"
            );
            rejected += 1;
        }
    }
    assert!(rejected > 0, "no seed produced a violation");
}

#[test]
fn knossos_blows_up_with_concurrency_where_elle_does_not() {
    // The Figure-4 phenomenon in miniature: many concurrent blind writes
    // make the WGL search space factorial while Elle stays linear.
    let mut b = HistoryBuilder::new();
    let n: u64 = 8;
    for i in 0..n {
        // All concurrent: invoke at 0..n, complete after everyone invoked.
        b.txn(i as u32)
            .append(1, i + 1)
            .at(i as usize, Some(100 + i as usize))
            .commit();
    }
    // A final read pinning one specific order.
    let order: Vec<u64> = (1..=n).rev().collect();
    b.txn(99).read_list(1, order).at(200, Some(201)).commit();
    let h = b.build();

    let t0 = std::time::Instant::now();
    assert!(elle_ok(&h));
    let elle_time = t0.elapsed();

    let r = elle::knossos::check(
        &h,
        KnossosOptions::default().with_budget(Duration::from_secs(10)),
    );
    // Knossos gets the right answer here but does radically more work.
    assert_eq!(r.outcome, KnossosOutcome::Ok);
    assert!(
        r.states_explored as u64 > 10 * h.len() as u64,
        "expected search blowup, explored only {}",
        r.states_explored
    );
    // And Elle should be far faster in wall-clock terms too (loose bound).
    assert!(
        elle_time < Duration::from_secs(1),
        "elle took {elle_time:?}"
    );
}
