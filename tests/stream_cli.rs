//! The `elle-stream` command-line interface, end to end — including the
//! gen → NDJSON → `elle-stream` vs `elle-check` differential on the
//! checked-in fixture.

use elle::prelude::*;
use std::process::Command;

fn stream_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-stream"))
}

fn check_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-check"))
}

/// The paper's §7.1 TiDB trio fixture (`history_to_json` wire data).
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/tidb_g_single.json"
);

/// The `report` field of the last epoch line of `--json` output.
/// `elle-stream` always emits `"report":{…}` as the final field of the
/// epoch object, so the report is the slice from the marker to the
/// object's closing brace.
fn last_epoch_report(stdout: &str) -> Report {
    let line = stdout.lines().last().expect("at least one epoch line");
    let marker = "\"report\":";
    let at = line.find(marker).expect("epoch line carries a report");
    let json = &line[at + marker.len()..line.len() - 1];
    serde_json::from_str(json).expect("report field parses")
}

#[test]
fn help_smoke() {
    let out = stream_bin().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--epoch-txns", "--follow", "--json", "--gen", "--model"] {
        assert!(stdout.contains(flag), "missing {flag} in usage:\n{stdout}");
    }
    // A usage error reports on stderr with exit 2.
    let out = stream_bin().arg("--nope").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: elle-stream"));
}

#[test]
fn fixture_stream_diffs_clean_against_elle_check() {
    // gen → elle-stream → diff vs elle-check: export the fixture as
    // NDJSON, stream it with a tiny epoch size, and require the final
    // epoch's report to be byte-identical to the batch CLI's.
    let raw = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let h = elle::history::history_from_json(&raw).expect("fixture parses");
    let nd_path = std::env::temp_dir().join("elle_stream_cli_fixture.ndjson");
    std::fs::write(&nd_path, elle::history::history_to_ndjson(&h)).unwrap();

    let stream_out = stream_bin()
        .args([
            nd_path.to_str().unwrap(),
            "--model",
            "snapshot-isolation",
            "--epoch-txns",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(stream_out.status.code(), Some(1), "{stream_out:?}");
    let stream_report = last_epoch_report(&String::from_utf8_lossy(&stream_out.stdout));

    let check_out = check_bin()
        .args([FIXTURE, "--model", "snapshot-isolation", "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(check_out.status.code(), Some(1), "{check_out:?}");
    let check_report: Report =
        serde_json::from_str(&String::from_utf8_lossy(&check_out.stdout)).unwrap();

    assert_eq!(
        serde_json::to_string(&stream_report).unwrap(),
        serde_json::to_string(&check_report).unwrap(),
        "stream and batch CLI reports differ on the fixture"
    );
    let _ = std::fs::remove_file(&nd_path);
}

#[test]
fn generated_workload_streams_from_stdin() {
    use std::io::Write as _;
    let params = GenParams::contended(80, ObjectKind::ListAppend).with_seed(5);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(5);
    let log = elle::gen::run_workload_log(params, db);
    let nd = elle::history::events_to_ndjson(&log);

    let mut child = stream_bin()
        .args(["-", "--epoch-txns", "20", "--process", "--realtime"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(nd.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let epochs = stdout.lines().filter(|l| l.starts_with("epoch")).count();
    assert!(epochs >= 4, "expected several epoch lines:\n{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn live_gen_mode_smokes() {
    let out = stream_bin()
        .args([
            "--gen",
            "300",
            "--epoch-txns",
            "100",
            "--process",
            "--realtime",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() >= 3, "{stdout}");
    let report = last_epoch_report(&stdout);
    assert!(report.ok());
    assert_eq!(report.stats.txns, 300);
}

#[test]
fn malformed_line_reports_position_and_exit_2() {
    let nd_path = std::env::temp_dir().join("elle_stream_cli_bad.ndjson");
    std::fs::write(&nd_path, "{\"oops\"\n").unwrap();
    let out = stream_bin()
        .arg(nd_path.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let _ = std::fs::remove_file(&nd_path);
}
