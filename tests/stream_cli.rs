//! The `elle-stream` command-line interface, end to end — including the
//! gen → NDJSON → `elle-stream` vs `elle-check` differential on the
//! checked-in fixture.

use elle::prelude::*;
use std::process::Command;

fn stream_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-stream"))
}

fn check_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-check"))
}

/// The paper's §7.1 TiDB trio fixture (`history_to_json` wire data).
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/tidb_g_single.json"
);

/// The `report` field of the last epoch line of `--json` output.
/// `elle-stream` always emits `"report":{…}` as the final field of the
/// epoch object, so the report is the slice from the marker to the
/// object's closing brace.
fn last_epoch_report(stdout: &str) -> Report {
    let line = stdout.lines().last().expect("at least one epoch line");
    let marker = "\"report\":";
    let at = line.find(marker).expect("epoch line carries a report");
    let json = &line[at + marker.len()..line.len() - 1];
    serde_json::from_str(json).expect("report field parses")
}

#[test]
fn help_smoke() {
    let out = stream_bin().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--epoch-txns", "--follow", "--json", "--gen", "--model"] {
        assert!(stdout.contains(flag), "missing {flag} in usage:\n{stdout}");
    }
    // A usage error reports on stderr with exit 2.
    let out = stream_bin().arg("--nope").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: elle-stream"));
}

#[test]
fn fixture_stream_diffs_clean_against_elle_check() {
    // gen → elle-stream → diff vs elle-check: export the fixture as
    // NDJSON, stream it with a tiny epoch size, and require the final
    // epoch's report to be byte-identical to the batch CLI's.
    let raw = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let h = elle::history::history_from_json(&raw).expect("fixture parses");
    let nd_path = std::env::temp_dir().join("elle_stream_cli_fixture.ndjson");
    std::fs::write(&nd_path, elle::history::history_to_ndjson(&h)).unwrap();

    let stream_out = stream_bin()
        .args([
            nd_path.to_str().unwrap(),
            "--model",
            "snapshot-isolation",
            "--epoch-txns",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(stream_out.status.code(), Some(1), "{stream_out:?}");
    let stream_report = last_epoch_report(&String::from_utf8_lossy(&stream_out.stdout));

    let check_out = check_bin()
        .args([FIXTURE, "--model", "snapshot-isolation", "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(check_out.status.code(), Some(1), "{check_out:?}");
    let check_report: Report =
        serde_json::from_str(&String::from_utf8_lossy(&check_out.stdout)).unwrap();

    assert_eq!(
        serde_json::to_string(&stream_report).unwrap(),
        serde_json::to_string(&check_report).unwrap(),
        "stream and batch CLI reports differ on the fixture"
    );
    let _ = std::fs::remove_file(&nd_path);
}

#[test]
fn generated_workload_streams_from_stdin() {
    use std::io::Write as _;
    let params = GenParams::contended(80, ObjectKind::ListAppend).with_seed(5);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(5);
    let log = elle::gen::run_workload_log(params, db);
    let nd = elle::history::events_to_ndjson(&log);

    let mut child = stream_bin()
        .args(["-", "--epoch-txns", "20", "--process", "--realtime"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(nd.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let epochs = stdout.lines().filter(|l| l.starts_with("epoch")).count();
    assert!(epochs >= 4, "expected several epoch lines:\n{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn live_gen_mode_smokes() {
    let out = stream_bin()
        .args([
            "--gen",
            "300",
            "--epoch-txns",
            "100",
            "--process",
            "--realtime",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() >= 3, "{stdout}");
    let report = last_epoch_report(&stdout);
    assert!(report.ok());
    assert_eq!(report.stats.txns, 300);
}

#[test]
fn malformed_line_reports_position_and_exit_2() {
    let nd_path = std::env::temp_dir().join("elle_stream_cli_bad.ndjson");
    std::fs::write(&nd_path, "{\"oops\"\n").unwrap();
    let out = stream_bin()
        .arg(nd_path.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let _ = std::fs::remove_file(&nd_path);
}

/// A temp NDJSON file with a clean little generated workload.
fn write_workload(name: &str, n: usize) -> std::path::PathBuf {
    let params = GenParams::contended(n, ObjectKind::ListAppend).with_seed(9);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(9);
    let log = elle::gen::run_workload_log(params, db);
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, elle::history::events_to_ndjson(&log)).unwrap();
    path
}

#[test]
fn injected_seal_panic_poisons_one_epoch_and_recovers() {
    let nd_path = write_workload("elle_stream_cli_poison.ndjson", 120);
    let out = stream_bin()
        .args([nd_path.to_str().unwrap(), "--epoch-txns", "30", "--json"])
        .args(["--inject-seal-panic", "1"])
        .output()
        .expect("binary runs");
    // The stream keeps sealing past the poisoned epoch and the *final*
    // verdict is healthy, so the exit code is 0.
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let poisoned: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"poisoned\""))
        .collect();
    assert_eq!(poisoned.len(), 1, "{stdout}");
    assert!(poisoned[0].contains("\"epoch\":1,"));
    assert!(poisoned[0].contains("\"ok\":null"));
    assert!(poisoned[0].contains("injected seal panic"));
    // Healthy epochs are untouched by the new field.
    assert!(stdout.lines().last().unwrap().contains("\"ok\":true"));
    let report = last_epoch_report(&stdout);
    assert!(report.ok());
    assert_eq!(report.stats.txns, 120);

    // Poisoning the *final* (end-of-stream) seal exits 3 instead.
    let n_epochs = stdout.lines().count();
    let out = stream_bin()
        .args([nd_path.to_str().unwrap(), "--epoch-txns", "30", "--json"])
        .args(["--inject-seal-panic", &(n_epochs - 1).to_string()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let _ = std::fs::remove_file(&nd_path);
}

#[test]
fn quarantine_gauges_reach_the_timing_output() {
    // Duplicate one line mid-stream: strict refuses (exit 2), while
    // --quarantine skips it, reports the gauge, and stays clean.
    let nd_path = write_workload("elle_stream_cli_gauge.ndjson", 60);
    let wire = std::fs::read_to_string(&nd_path).unwrap();
    let dup: String = wire
        .lines()
        .enumerate()
        .flat_map(|(i, l)| if i == 10 { vec![l, l] } else { vec![l] })
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&nd_path, dup).unwrap();

    let out = stream_bin()
        .arg(nd_path.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 12"));

    let out = stream_bin()
        .args([nd_path.to_str().unwrap(), "--quarantine", "--timing"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined: line 12"), "{stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(stderr.contains("1 events"), "{stderr}");
    let _ = std::fs::remove_file(&nd_path);
}

#[test]
fn oversized_lines_are_capped() {
    let nd_path = write_workload("elle_stream_cli_oversize.ndjson", 40);
    let mut wire = std::fs::read_to_string(&nd_path).unwrap();
    wire.push_str(&format!("{{\"pad\":\"{}\"}}\n", "x".repeat(5000)));
    std::fs::write(&nd_path, wire).unwrap();

    let out = stream_bin()
        .args([nd_path.to_str().unwrap(), "--max-buffered-bytes", "4096"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("4096-byte buffer budget"));

    let out = stream_bin()
        .args([nd_path.to_str().unwrap(), "--max-buffered-bytes", "4096"])
        .arg("--quarantine")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_file(&nd_path);
}
