//! The isolation matrix: run the simulator at every isolation level and
//! assert the checker finds exactly the anomaly classes that level
//! permits — jointly validating the engine and the checker against each
//! other (if either were wrong, some cell would light up).

use elle::prelude::*;

/// A contended read-modify-write workload that provokes anomalies fast.
fn run(iso: IsolationLevel, seed: u64, n: usize) -> History {
    let params = GenParams {
        n_txns: n,
        min_txn_len: 2,
        max_txn_len: 5,
        active_keys: 4,
        writes_per_key: 128,
        read_prob: 0.5,
        kind: ObjectKind::ListAppend,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(iso, ObjectKind::ListAppend)
        .with_processes(8)
        .with_seed(seed);
    run_workload(params, db).expect("histories pair")
}

fn check(h: &History, opts: CheckOptions) -> Report {
    Checker::new(opts).check(h)
}

fn cycle_bases(r: &Report) -> Vec<AnomalyType> {
    let mut v: Vec<AnomalyType> = r
        .anomaly_counts
        .keys()
        .filter(|t| t.is_cycle())
        .map(|t| t.base())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn strict_serializable_is_clean() {
    for seed in [1, 2, 3] {
        let h = run(IsolationLevel::StrictSerializable, seed, 400);
        let r = check(&h, CheckOptions::strict_serializable());
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        assert!(r.anomalies.is_empty(), "seed {seed}:\n{}", r.summary());
    }
}

#[test]
fn serializable_with_stale_reads_passes_serializable() {
    for seed in [1, 2, 3] {
        let params = GenParams {
            n_txns: 400,
            min_txn_len: 1,
            max_txn_len: 4,
            active_keys: 3,
            writes_per_key: 128,
            read_prob: 0.6,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_stale_readonly(0.8, 6);
        let h = run_workload(params, db).unwrap();
        // Plain serializability holds…
        let r = check(&h, CheckOptions::serializable());
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        // …and any strict-check finding must be a session- or realtime-
        // augmented cycle (stale snapshots break both orders, neither of
        // which plain serializability promises).
        let strict = check(&h, CheckOptions::strict_serializable());
        for t in strict.types() {
            assert!(
                t.is_cycle() && t != t.base(),
                "seed {seed}: unexpected {t}\n{}",
                strict.summary()
            );
        }
    }
}

#[test]
fn serializable_stale_reads_do_violate_strictness() {
    // At least one seed must actually exhibit the realtime violation —
    // otherwise the test above is vacuous.
    let mut violations = 0;
    for seed in 1..=8 {
        let params = GenParams {
            n_txns: 400,
            min_txn_len: 1,
            max_txn_len: 4,
            active_keys: 3,
            writes_per_key: 128,
            read_prob: 0.6,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_stale_readonly(0.8, 6);
        let h = run_workload(params, db).unwrap();
        if !check(&h, CheckOptions::strict_serializable()).ok() {
            violations += 1;
        }
    }
    assert!(violations > 0, "stale reads never violated strictness");
}

#[test]
fn snapshot_isolation_passes_si_shows_write_skew() {
    let mut saw_g2 = false;
    for seed in 1..=6 {
        let h = run(IsolationLevel::SnapshotIsolation, seed, 600);
        // SI holds, including its strong (session/realtime) variants.
        let r = check(
            &h,
            CheckOptions::snapshot_isolation()
                .with_process_edges(true)
                .with_realtime_edges(true),
        );
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        // No SI-proscribed anomalies of any kind:
        for t in r.types() {
            assert!(
                !matches!(
                    t,
                    AnomalyType::G0
                        | AnomalyType::G1a
                        | AnomalyType::G1b
                        | AnomalyType::G1c
                        | AnomalyType::GSingle
                        | AnomalyType::LostUpdate
                        | AnomalyType::Internal
                        | AnomalyType::IncompatibleOrder
                ),
                "seed {seed}: SI must not show {t}\n{}",
                r.summary()
            );
        }
        saw_g2 |= cycle_bases(&r).contains(&AnomalyType::G2Item);
    }
    assert!(saw_g2, "no write skew in any SI run — workload too tame");
}

#[test]
fn read_committed_passes_rc_shows_read_skew() {
    let mut saw_skew = false;
    let mut saw_lost_update = false;
    for seed in 1..=6 {
        let h = run(IsolationLevel::ReadCommitted, seed, 600);
        let r = check(&h, CheckOptions::read_committed());
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        // RC never exposes uncommitted or intermediate data:
        for t in r.types() {
            assert!(
                !matches!(
                    t,
                    AnomalyType::G0
                        | AnomalyType::G1a
                        | AnomalyType::G1b
                        | AnomalyType::G1c
                        | AnomalyType::DirtyUpdate
                        | AnomalyType::GarbageRead
                        | AnomalyType::IncompatibleOrder
                ),
                "seed {seed}: RC must not show {t}\n{}",
                r.summary()
            );
        }
        let bases = cycle_bases(&r);
        saw_skew |= bases.contains(&AnomalyType::GSingle) || bases.contains(&AnomalyType::G2Item);
        saw_lost_update |= r.anomaly_counts.contains_key(&AnomalyType::LostUpdate);
    }
    assert!(saw_skew, "read committed never produced skew");
    assert!(
        saw_lost_update,
        "read committed never produced lost updates"
    );
}

#[test]
fn read_uncommitted_shows_g1_zoo() {
    let mut saw = std::collections::BTreeSet::new();
    for seed in 1..=8 {
        let params = GenParams {
            n_txns: 500,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 3,
            writes_per_key: 256,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::ReadUncommitted, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_faults(FaultPlan {
                info_prob: 0.0,
                server_abort_prob: 0.2,
                crash_on_info: false,
            });
        let h = run_workload(params, db).unwrap();
        let r = check(&h, CheckOptions::strict_serializable());
        saw.extend(r.types());
    }
    // The dirty-read family must appear.
    assert!(
        saw.contains(&AnomalyType::G1a),
        "no aborted reads under read-uncommitted; saw {saw:?}"
    );
    assert!(
        saw.contains(&AnomalyType::G1b) || saw.contains(&AnomalyType::DirtyUpdate),
        "no intermediate reads / dirty updates under read-uncommitted; saw {saw:?}"
    );
}

#[test]
fn faults_do_not_create_false_positives_under_strict_serializability() {
    // Lost acks and crashes create indeterminate txns and high logical
    // concurrency, but the engine stays strict-serializable — Elle must
    // stay silent (soundness under faults).
    for seed in [7, 17] {
        let params = GenParams {
            n_txns: 500,
            min_txn_len: 1,
            max_txn_len: 5,
            active_keys: 5,
            writes_per_key: 64,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_faults(FaultPlan {
                info_prob: 0.15,
                server_abort_prob: 0.1,
                crash_on_info: true,
            });
        let h = run_workload(params, db).unwrap();
        let r = check(&h, CheckOptions::strict_serializable());
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        assert!(r.anomalies.is_empty(), "seed {seed}:\n{}", r.summary());
    }
}

#[test]
fn matrix_over_register_workloads() {
    // Registers: strict-serializable stays clean; read-committed shows
    // lost updates (blind overwrites discard concurrent RMWs).
    let params = GenParams {
        n_txns: 500,
        min_txn_len: 2,
        max_txn_len: 4,
        active_keys: 3,
        writes_per_key: 128,
        read_prob: 0.5,
        kind: ObjectKind::Register,
        seed: 5,
        final_reads: false,
    };
    let strict = run_workload(
        params,
        DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::Register)
            .with_processes(8)
            .with_seed(5),
    )
    .unwrap();
    let r = Checker::new(CheckOptions::strict_serializable()).check(&strict);
    assert!(r.ok(), "{}", r.summary());

    let mut saw_lost = false;
    for seed in 1..=6 {
        let rc = run_workload(
            params.with_seed(seed),
            DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::Register)
                .with_processes(8)
                .with_seed(seed),
        )
        .unwrap();
        let r = Checker::new(CheckOptions::read_committed()).check(&rc);
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        saw_lost |= r.anomaly_counts.contains_key(&AnomalyType::LostUpdate);
    }
    assert!(saw_lost, "no register lost updates under read committed");
}
