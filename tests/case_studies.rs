//! Reproductions of the paper's four case studies (§7.1–§7.4): each
//! injected bug must yield the anomaly signature the paper reports for the
//! corresponding real database.

use elle::prelude::*;

fn seen_types(
    histories: &[History],
    opts: CheckOptions,
) -> std::collections::BTreeSet<AnomalyType> {
    let mut seen = std::collections::BTreeSet::new();
    for h in histories {
        seen.extend(Checker::new(opts).check(h).types());
    }
    seen
}

/// §7.1 TiDB: silent transaction retry under snapshot isolation.
///
/// Paper: "frequent anomalies — even in the absence of faults", G-single
/// read skew, lost updates, and inconsistent observations (implying
/// aborted reads).
#[test]
fn tidb_silent_retry() {
    let mut histories = Vec::new();
    for seed in 1..=6 {
        let params = GenParams {
            n_txns: 500,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 4,
            writes_per_key: 128,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_bug(Bug::SilentRetry);
        histories.push(run_workload(params, db).unwrap());
    }
    let seen = seen_types(&histories, CheckOptions::snapshot_isolation());
    assert!(
        seen.contains(&AnomalyType::GSingle),
        "no read skew: {seen:?}"
    );
    assert!(
        seen.contains(&AnomalyType::LostUpdate),
        "no lost updates: {seen:?}"
    );
    assert!(
        seen.contains(&AnomalyType::IncompatibleOrder),
        "no inconsistent observations: {seen:?}"
    );
    // And the claimed model is rejected:
    let r = Checker::new(CheckOptions::snapshot_isolation()).check(&histories[0]);
    assert!(!r.ok(), "{}", r.summary());
}

/// §7.2 YugaByte DB: stale read timestamps after master failover.
///
/// Paper: "a handful of G2-item anomalies … Every cycle we found involved
/// multiple anti-dependencies; we observed no cases of G-single, G1, or
/// G0."
#[test]
fn yugabyte_stale_read_timestamps() {
    let mut seen = std::collections::BTreeSet::new();
    for seed in 1..=8 {
        let params = GenParams {
            n_txns: 600,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 4,
            writes_per_key: 128,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(10)
            .with_seed(seed)
            .with_bug(Bug::StaleReadTimestamp {
                period: 400,
                window: 120,
                lag: 0,
            });
        let h = run_workload(params, db).unwrap();
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        for t in r.types() {
            seen.insert(t);
            // The signature: only G2-item-class cycles, nothing weaker.
            assert!(
                t.is_cycle() && t.base() == AnomalyType::G2Item,
                "seed {seed}: unexpected {t}\n{}",
                r.summary()
            );
        }
        // Confirmed cycles have ≥ 2 anti-dependency edges by construction
        // (base classification counts presented rw edges).
        for a in &r.anomalies {
            if a.typ.is_cycle() {
                let rw = a
                    .steps
                    .iter()
                    .filter(|s| s.class == elle::graph::EdgeClass::Rw)
                    .count();
                assert!(rw >= 2, "cycle with {rw} rw edges:\n{}", a.explanation);
            }
        }
    }
    assert!(
        seen.iter().any(|t| t.base() == AnomalyType::G2Item),
        "no G2-item anywhere: {seen:?}"
    );
}

/// §7.3 FaunaDB: index reads that miss the transaction's own tentative
/// writes — internal inconsistency under normal operation, no faults.
#[test]
fn fauna_index_misses_own_writes() {
    let mut seen = std::collections::BTreeSet::new();
    let mut example = None;
    for seed in 1..=4 {
        let params = GenParams {
            n_txns: 400,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 5,
            writes_per_key: 64,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(6)
            .with_seed(seed)
            .with_bug(Bug::IndexMissesOwnWrites { prob: 0.25 });
        let h = run_workload(params, db).unwrap();
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        seen.extend(r.types());
        if example.is_none() {
            example = r
                .of_type(AnomalyType::Internal)
                .next()
                .map(|a| a.explanation.clone());
        }
    }
    assert!(
        seen.contains(&AnomalyType::Internal),
        "no internal inconsistency: {seen:?}"
    );
    // The explanation should look like the paper's example: a transaction
    // whose read is incompatible with its own operations.
    let ex = example.expect("an internal anomaly with explanation");
    assert!(ex.contains("own operations imply"), "{ex}");
}

/// §7.4 Dgraph: register workload; reads from freshly migrated shards
/// return nil. Internal inconsistency, cyclic version orders (reported
/// and discarded), and read skew.
#[test]
fn dgraph_fresh_shard_nil_reads() {
    let mut seen = std::collections::BTreeSet::new();
    for seed in 1..=6 {
        let params = GenParams {
            n_txns: 500,
            min_txn_len: 2,
            max_txn_len: 4,
            active_keys: 4,
            writes_per_key: 128,
            read_prob: 0.5,
            kind: ObjectKind::Register,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::Register)
            .with_processes(8)
            .with_seed(seed)
            .with_bug(Bug::FreshShardNilReads {
                period: 300,
                window: 90,
                shards: 4,
            });
        let h = run_workload(params, db).unwrap();
        // Dgraph claims SI plus per-key linearizability: enable the
        // realtime version-order inference.
        let opts = CheckOptions::snapshot_isolation()
            .with_process_edges(true)
            .with_realtime_edges(true)
            .with_registers(RegisterOptions {
                initial_state: true,
                writes_follow_reads: true,
                sequential_keys: true,
                linearizable_keys: true,
            });
        let r = Checker::new(opts).check(&h);
        seen.extend(r.types());
    }
    assert!(
        seen.contains(&AnomalyType::Internal),
        "no internal inconsistency: {seen:?}"
    );
    assert!(
        seen.contains(&AnomalyType::CyclicVersionOrder),
        "no cyclic version orders: {seen:?}"
    );
    assert!(
        seen.iter().any(|t| t.is_cycle()),
        "no dependency cycles (read skew): {seen:?}"
    );
}

/// Control: with the bugs switched off, the same configurations are clean
/// under their claimed models.
#[test]
fn bug_free_controls_are_clean() {
    // TiDB/Fauna/Dgraph-shaped workloads without the bug:
    for (iso, kind, opts) in [
        (
            IsolationLevel::SnapshotIsolation,
            ObjectKind::ListAppend,
            CheckOptions::snapshot_isolation(),
        ),
        (
            IsolationLevel::StrictSerializable,
            ObjectKind::ListAppend,
            CheckOptions::strict_serializable(),
        ),
        (
            IsolationLevel::SnapshotIsolation,
            ObjectKind::Register,
            CheckOptions::snapshot_isolation(),
        ),
    ] {
        let params = GenParams {
            n_txns: 400,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 4,
            writes_per_key: 64,
            read_prob: 0.5,
            kind,
            seed: 3,
            final_reads: false,
        };
        let db = DbConfig::new(iso, kind).with_processes(8).with_seed(3);
        let h = run_workload(params, db).unwrap();
        let r = Checker::new(opts).check(&h);
        assert!(r.ok(), "{iso:?}/{kind:?}:\n{}", r.summary());
    }
}
