//! §5.1's timestamp inference: when a database exposes transaction
//! start/commit timestamps, Elle builds the start-ordered serialization
//! graph and reports G-SI cycles that contradict the claimed snapshot
//! order.

use elle::prelude::*;

#[test]
fn gsi_cycle_detected_from_exposed_timestamps() {
    // T0 commits (db timestamp 2) before T1 starts (db timestamp 3), yet
    // T1 reads key 1 as empty — its snapshot ignored an earlier commit.
    // Real-time the two overlap, so only the timestamps reveal the cycle.
    let mut b = HistoryBuilder::new();
    b.txn(0)
        .append(1, 1)
        .at(0, Some(10))
        .timestamps(1, 2)
        .commit();
    b.txn(1)
        .read_list(1, [])
        .at(1, Some(9))
        .timestamps(3, 3)
        .commit();
    b.txn(2).read_list(1, [1]).at(11, Some(12)).commit();
    let h = b.build();

    // Without timestamp edges: nothing (serializable reorder exists).
    let quiet = Checker::new(CheckOptions::snapshot_isolation()).check(&h);
    assert!(quiet.ok(), "{}", quiet.summary());

    // With timestamp edges: a start-ordered cycle.
    let opts = CheckOptions::snapshot_isolation().with_timestamp_edges(true);
    let r = Checker::new(opts).check(&h);
    assert!(!r.ok(), "{}", r.summary());
    assert!(
        r.anomaly_counts.contains_key(&AnomalyType::GSI),
        "{}",
        r.summary()
    );
    let a = r.of_type(AnomalyType::GSI).next().unwrap();
    assert!(
        a.explanation.contains("database timestamp"),
        "{}",
        a.explanation
    );
    // G-SI rules out snapshot isolation but the violated set must not
    // reach below it.
    assert!(r.violated.contains(&ConsistencyModel::SnapshotIsolation));
    assert!(!r.violated.contains(&ConsistencyModel::ReadCommitted));
}

#[test]
fn simulator_exposes_coherent_timestamps() {
    // A healthy SI engine with exposed timestamps: the start-ordered graph
    // must be cycle-free (its snapshots really do respect time-precedes).
    for seed in 1..=4 {
        let params = GenParams {
            n_txns: 400,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 4,
            writes_per_key: 64,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(seed)
            .with_timestamps(true);
        let h = run_workload(params, db).unwrap();
        // Timestamps flowed through pairing:
        assert!(
            h.committed().all(|t| t.timestamps.is_some()),
            "committed txns must carry timestamps"
        );
        let opts = CheckOptions::snapshot_isolation()
            .with_process_edges(true)
            .with_realtime_edges(true)
            .with_timestamp_edges(true);
        let r = Checker::new(opts).check(&h);
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        assert!(
            !r.anomaly_counts.contains_key(&AnomalyType::GSI),
            "seed {seed}:\n{}",
            r.summary()
        );
    }
}

#[test]
fn yugabyte_bug_visible_through_timestamps_too() {
    // The stale-read-timestamp bug also shows up as G-SI when the engine
    // exposes its (lagged) timestamps: the lagged snapshot contradicts
    // commits that time-precede the transaction.
    let mut seen_gsi = false;
    for seed in 1..=6 {
        let params = GenParams {
            n_txns: 600,
            min_txn_len: 2,
            max_txn_len: 5,
            active_keys: 4,
            writes_per_key: 128,
            read_prob: 0.5,
            kind: ObjectKind::ListAppend,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(10)
            .with_seed(seed)
            .with_timestamps(true)
            .with_bug(Bug::StaleReadTimestamp {
                period: 400,
                window: 120,
                lag: 2,
            });
        let h = run_workload(params, db).unwrap();
        let opts = CheckOptions::strict_serializable().with_timestamp_edges(true);
        let r = Checker::new(opts).check(&h);
        seen_gsi |= r.anomaly_counts.contains_key(&AnomalyType::GSI);
    }
    assert!(seen_gsi, "lagged snapshots never produced a G-SI cycle");
}

#[test]
fn timestamps_round_trip_through_json() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).timestamps(3, 9).commit();
    b.txn(1).append(1, 2).commit();
    let h = b.build();
    let json = elle::history::history_to_json(&h);
    let back = elle::history::history_from_json(&json).unwrap();
    assert_eq!(back.get(TxnId(0)).timestamps, Some((3, 9)));
    assert_eq!(back.get(TxnId(1)).timestamps, None);
    assert_eq!(h, back);
}
