//! Facade-level end-to-end flows: export/import, report shape, and the
//! full generate → simulate → pair → check → explain pipeline.

use elle::prelude::*;

#[test]
fn full_pipeline_through_json() {
    // Generate against a buggy database…
    let params = GenParams::contended(300, ObjectKind::ListAppend).with_seed(4);
    let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
        .with_processes(6)
        .with_seed(4)
        .with_bug(Bug::SilentRetry);
    let h = run_workload(params, db).unwrap();

    // …ship the observation as JSON (as a Jepsen harness would)…
    let json = elle::history::history_to_json(&h);
    let h2 = elle::history::history_from_json(&json).unwrap();
    assert_eq!(h, h2);

    // …and check the imported copy.
    let r1 = Checker::new(CheckOptions::snapshot_isolation()).check(&h);
    let r2 = Checker::new(CheckOptions::snapshot_isolation()).check(&h2);
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r2).unwrap()
    );
    assert!(!r1.ok());
}

#[test]
fn report_is_json_exportable() {
    let params = GenParams::contended(200, ObjectKind::ListAppend);
    let db = DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::ListAppend)
        .with_processes(6)
        .with_seed(9);
    let h = run_workload(params, db).unwrap();
    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
    let json = serde_json::to_string_pretty(&r).unwrap();
    assert!(json.contains("anomaly_counts"));
    let back: Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back.stats.txns, r.stats.txns);
    assert_eq!(back.anomalies.len(), r.anomalies.len());
}

#[test]
fn explanations_name_real_transactions() {
    let params = GenParams::contended(400, ObjectKind::ListAppend).with_seed(2);
    let db = DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::ListAppend)
        .with_processes(8)
        .with_seed(2);
    let h = run_workload(params, db).unwrap();
    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
    for a in r.anomalies.iter().filter(|a| a.typ.is_cycle()) {
        // Every cycle step's endpoints appear in the history and the
        // explanation mentions each transaction by name.
        assert!(a.steps.len() >= 2);
        for s in &a.steps {
            assert!(s.from.idx() < h.len());
            assert!(s.to.idx() < h.len());
            assert!(a.explanation.contains(&s.from.to_string()));
        }
        // Steps chain into a cycle.
        for w in a.steps.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(a.steps.last().unwrap().to, a.steps[0].from);
        assert!(a.explanation.ends_with("a contradiction!\n"));
    }
}

#[test]
fn summary_mentions_expectation_and_counts() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).abort();
    b.txn(1).read_list(1, [1]).commit();
    let r = Checker::new(CheckOptions::read_committed()).check(&b.build());
    let s = r.summary();
    assert!(s.contains("G1a"));
    assert!(s.contains("read-committed"));
    assert!(s.contains("VIOLATED"));
}

#[test]
fn empty_history_is_trivially_everything() {
    let r = Checker::new(CheckOptions::strict_serializable()).check(&History::default());
    assert!(r.ok());
    assert_eq!(
        r.strongest_satisfiable,
        vec![ConsistencyModel::StrictSerializable]
    );
}

#[test]
fn observed_write_coverage_improves_with_final_reads() {
    // §3: "so long as histories are long and include reads every so
    // often, the unknown fraction of a version order can be made
    // relatively small" — the final-read pass shrinks the unobserved tail.
    let base = GenParams {
        n_txns: 300,
        min_txn_len: 1,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 64,
        read_prob: 0.3,
        kind: ObjectKind::ListAppend,
        seed: 8,
        final_reads: false,
    };
    let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
        .with_processes(6)
        .with_seed(8);
    let without =
        Checker::new(CheckOptions::strict_serializable()).check(&run_workload(base, db).unwrap());
    let with = Checker::new(CheckOptions::strict_serializable())
        .check(&run_workload(base.with_final_reads(true), db).unwrap());
    assert!(without.stats.committed_writes > 0);
    let frac = |r: &Report| r.stats.observed_writes as f64 / r.stats.committed_writes as f64;
    assert!(
        frac(&with) > frac(&without),
        "final reads should raise coverage: {} vs {}",
        frac(&with),
        frac(&without)
    );
    assert!(with.ok() && without.ok());
}

#[test]
fn dot_export_of_cycles() {
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(34, 4)
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    let r = Checker::new(CheckOptions::snapshot_isolation()).check(&b.build());
    let a = r.of_type(AnomalyType::GSingle).next().expect("read skew");
    let dot = elle::core::explain::cycle_dot(&a.steps);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("rw"));
}
