//! End-to-end robustness suite for `elle-serve`: multi-tenant soak
//! differentials against the batch checker, per-tenant fault isolation
//! (seal panics, budgets), and crash-consistent recovery — in-process
//! through [`Server`] and through the real binary under SIGKILL.

use elle::dbsim::{chaos_session, delivered_lines, FaultSchedule};
use elle::prelude::*;
use elle::serve::{solo_verdict, ServeConfig, Server, Sink, TenantFinal};
use std::io::Write;
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};

/// A small per-tenant workload, deterministically seeded.
fn tenant_log(seed: u64, txns: usize) -> elle::history::EventLog {
    let params = GenParams::contended(txns, ObjectKind::ListAppend).with_seed(seed);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(seed ^ 0xabcd);
    elle::gen::run_workload_log(params, db)
}

/// Tenant-tagged wire lines for a clean log.
fn tagged_lines(tenant: &str, log: &elle::history::EventLog) -> Vec<String> {
    chaos_session(tenant, log, &FaultSchedule::none(), 0, 0).lines
}

fn collecting_sink() -> (Sink, Arc<Mutex<Vec<String>>>) {
    let lines: Arc<Mutex<Vec<String>>> = Arc::default();
    let captured = Arc::clone(&lines);
    let sink: Sink = Arc::new(move |line: &str| {
        captured.lock().unwrap().push(line.to_string());
    });
    (sink, lines)
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        epoch_txns: Some(20),
        snapshot_events: 24,
        workers: 3,
        ..ServeConfig::default()
    }
}

fn final_for<'a>(finals: &'a [TenantFinal], tenant: &str) -> &'a TenantFinal {
    finals
        .iter()
        .find(|f| f.tenant == tenant)
        .unwrap_or_else(|| panic!("no final verdict for {tenant}"))
}

/// The `"report":{…}` tail of a verdict envelope — the batch-identical
/// part, stable across restarts that replay resent (duplicate) lines.
fn report_slice(line: &str) -> &str {
    let at = line.find("\"report\":").expect("envelope has a report");
    &line[at..]
}

#[test]
fn multi_tenant_soak_matches_batch_and_oracle() {
    // Four concurrent tenants; tenant "soak-1" gets a damaged wire with
    // two mid-line connection kills (full resend each time). Every
    // clean tenant's final verdict must embed the batch checker's
    // report for its history; the damaged tenant must match the
    // single-tenant oracle fed the same delivered lines.
    let cfg = small_cfg();
    let sessions: Vec<_> = (0..4)
        .map(|t| {
            let name = format!("soak-{t}");
            let log = tenant_log(100 + t, 60);
            let schedule = if t == 1 {
                FaultSchedule::typical(7)
            } else {
                FaultSchedule::none()
            };
            let kills = if t == 1 { 2 } else { 0 };
            (chaos_session(&name, &log, &schedule, kills, 9 + t), log)
        })
        .collect();
    let (sink, _) = collecting_sink();
    let server = Server::start(cfg.clone(), Arc::clone(&sink)).unwrap();
    std::thread::scope(|scope| {
        for (session, _) in &sessions {
            let server = &server;
            let sink = Arc::clone(&sink);
            scope.spawn(move || {
                for line in delivered_lines(session) {
                    server.submit(&line, &sink);
                }
            });
        }
    });
    let finals = server.drain();
    assert_eq!(finals.len(), 4);
    for (t, (session, log)) in sessions.iter().enumerate() {
        let f = final_for(&finals, &session.tenant);
        if t == 1 {
            let want = solo_verdict(&cfg, &session.tenant, &delivered_lines(session));
            assert_eq!(f.verdict, want, "damaged tenant diverged from oracle");
        } else {
            let batch = Checker::new(cfg.opts).check(&log.pair().unwrap());
            assert_eq!(f.ok, Some(batch.ok()));
            assert_eq!(
                report_slice(&f.verdict),
                format!("\"report\":{}}}", serde_json::to_string(&batch).unwrap()),
                "clean tenant {} diverged from batch",
                session.tenant
            );
        }
    }
}

#[test]
fn seal_panic_in_one_tenant_leaves_others_byte_identical() {
    let run = |poison: bool| -> (Vec<TenantFinal>, Vec<String>) {
        let mut cfg = small_cfg();
        if poison {
            cfg.inject_seal_panic = Some(("victim".to_string(), 1));
        }
        let (sink, lines) = collecting_sink();
        let server = Server::start(cfg, Arc::clone(&sink)).unwrap();
        let tenants: Vec<(String, Vec<String>)> = (0..3)
            .map(|t| {
                let name = if t == 0 {
                    "victim".to_string()
                } else {
                    format!("bystander-{t}")
                };
                let lines = tagged_lines(&name, &tenant_log(500 + t, 70));
                (name, lines)
            })
            .collect();
        std::thread::scope(|scope| {
            for (_, lines) in &tenants {
                let server = &server;
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for line in lines {
                        server.submit(line, &sink);
                    }
                });
            }
        });
        let finals = server.drain();
        let responses = lines.lock().unwrap().clone();
        (finals, responses)
    };
    let (clean, _) = run(false);
    let (poisoned, responses) = run(true);
    assert!(
        responses.iter().any(|l| l.contains("\"poisoned\":")),
        "victim's epoch 1 must surface as poisoned"
    );
    for f in &clean {
        let p = final_for(&poisoned, &f.tenant);
        if f.tenant == "victim" {
            // The victim recovers: its *final* verdict is healthy again,
            // though intermediate envelopes carried the poison.
            assert_eq!(p.ok, f.ok);
        } else {
            assert_eq!(
                p.verdict, f.verdict,
                "bystander {} perturbed by another tenant's seal panic",
                f.tenant
            );
        }
    }
}

#[test]
fn budget_rejects_are_attributed_and_isolated() {
    use elle::serve::Submitted;
    let mut cfg = small_cfg();
    cfg.workers = 1;
    cfg.max_tenant_bytes = 4096; // roughly two dozen wire lines
    let (sink, lines) = collecting_sink();
    let server = Server::start(cfg.clone(), Arc::clone(&sink)).unwrap();

    // Stall the (single) worker deterministically: a seal request whose
    // response sink blocks on a mutex the test holds. Everything
    // submitted behind it stays buffered, so admission accounting —
    // not scheduling luck — decides who gets in.
    let gate = Arc::new(Mutex::new(()));
    let held = gate.lock().unwrap();
    let blocking: Sink = {
        let gate = Arc::clone(&gate);
        Arc::new(move |_line: &str| {
            let _held = gate.lock().unwrap();
        })
    };
    server.submit("{\"tenant\":\"greedy\",\"op\":\"seal\"}", &blocking);

    let greedy = tagged_lines("greedy", &tenant_log(61, 60));
    let modest_log = tenant_log(62, 8);
    let modest = tagged_lines("modest", &modest_log);
    let verdicts: Vec<Submitted> = greedy.iter().map(|l| server.submit(l, &sink)).collect();
    assert!(
        verdicts.contains(&Submitted::Rejected),
        "a stalled tenant must hit its buffered-byte budget"
    );
    // The modest tenant fits inside its own budget and is untouched by
    // the greedy one's rejects.
    for line in &modest {
        assert_eq!(server.submit(line, &sink), Submitted::Ok);
    }
    drop(held);
    let finals = server.drain();
    let responses = lines.lock().unwrap().clone();
    assert!(
        responses
            .iter()
            .any(|l| l.contains("\"tenant\":\"greedy\"") && l.contains("\"code\":429")),
        "expected 429 rejects for the greedy tenant, got: {responses:?}"
    );
    assert!(
        !responses
            .iter()
            .any(|l| l.contains("\"tenant\":\"modest\"") && l.contains("429")),
        "modest tenant must not be rejected"
    );
    // The modest tenant still gets its exact batch verdict.
    let batch = Checker::new(cfg.opts).check(&modest_log.pair().unwrap());
    let f = final_for(&finals, "modest");
    assert_eq!(f.ok, Some(batch.ok()));
    assert_eq!(
        report_slice(&f.verdict),
        format!("\"report\":{}}}", serde_json::to_string(&batch).unwrap()),
    );
}

#[test]
fn oversized_and_malformed_lines_are_rejected_not_fatal() {
    let mut cfg = small_cfg();
    cfg.max_line_bytes = 256;
    let (sink, lines) = collecting_sink();
    let server = Server::start(cfg.clone(), Arc::clone(&sink)).unwrap();
    let log = tenant_log(77, 10);
    server.submit(
        &format!("{{\"tenant\":\"t\",\"event\":{}}}", "x".repeat(400)),
        &sink,
    );
    server.submit("{torn json", &sink);
    server.submit("{\"tenant\":\"../evil\",\"op\":\"seal\"}", &sink);
    for line in tagged_lines("t", &log) {
        server.submit(&line, &sink);
    }
    let finals = server.drain();
    let responses = lines.lock().unwrap().clone();
    assert!(responses.iter().any(|l| l.contains("\"code\":400")));
    let batch = Checker::new(cfg.opts).check(&log.pair().unwrap());
    assert_eq!(final_for(&finals, "t").ok, Some(batch.ok()));
}

/// The tentpole differential: across 50 seeded multi-tenant schedules,
/// killing the service mid-ingest (journals intact, no final seals, no
/// snapshot rotation) and restarting from disk must converge every
/// tenant to the *byte-identical* final envelope of an uninterrupted
/// run — gauges, epoch ordinals, and all.
#[test]
fn crash_recovery_differential_50_seeds() {
    for seed in 0..50u64 {
        let mut cfg = small_cfg();
        cfg.epoch_txns = Some(10 + (seed % 7) as usize);
        cfg.snapshot_events = 8 + (seed % 23) as usize;
        let tenants: Vec<(String, Vec<String>)> = (0..2)
            .map(|t| {
                let name = format!("cr-{t}");
                let lines = tagged_lines(&name, &tenant_log(seed * 10 + t, 40));
                (name, lines)
            })
            .collect();
        // One interleaved feed order, shared by both runs.
        let mut wire: Vec<&String> = Vec::new();
        let longest = tenants.iter().map(|(_, l)| l.len()).max().unwrap();
        for i in 0..longest {
            for (_, lines) in &tenants {
                if let Some(l) = lines.get(i) {
                    wire.push(l);
                }
            }
        }
        let split = (seed as usize * 13 + 7) % wire.len();

        let discard: Sink = Arc::new(|_| {});
        // Run A: uninterrupted, durable.
        let dir_a = tmp_dir(&format!("crash_a_{seed}"));
        let mut cfg_a = cfg.clone();
        cfg_a.data_dir = Some(dir_a.clone());
        let server = Server::start(cfg_a, Arc::clone(&discard)).unwrap();
        for line in &wire {
            server.submit(line, &discard);
        }
        let want = server.drain();

        // Run B: crash after `split` lines, restart, feed the rest.
        let dir_b = tmp_dir(&format!("crash_b_{seed}"));
        let mut cfg_b = cfg.clone();
        cfg_b.data_dir = Some(dir_b.clone());
        let server = Server::start(cfg_b.clone(), Arc::clone(&discard)).unwrap();
        for line in &wire[..split] {
            server.submit(line, &discard);
        }
        server.abort(); // SIGKILL-equivalent: journals only, no seals
        let server = Server::start(cfg_b, Arc::clone(&discard)).unwrap();
        for line in &wire[split..] {
            server.submit(line, &discard);
        }
        let got = server.drain();

        assert_eq!(want.len(), got.len(), "seed {seed}: tenant set diverged");
        for w in &want {
            let g = final_for(&got, &w.tenant);
            assert_eq!(
                g.verdict, w.verdict,
                "seed {seed} tenant {}: crash-recovered verdict diverged",
                w.tenant
            );
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

/// Chaos clients (mid-line kills + full resends) against a durable
/// server that is also crash-restarted in the middle: the absorbed
/// duplicates shift the quarantine gauges, but every tenant's final
/// *report* and verdict must match the solo oracle fed the same lines.
#[test]
fn chaos_with_crash_restart_converges_to_oracle() {
    let mut cfg = small_cfg();
    let dir = tmp_dir("chaos_crash");
    cfg.data_dir = Some(dir.clone());
    let sessions: Vec<_> = (0..3)
        .map(|t| {
            let name = format!("cc-{t}");
            let log = tenant_log(900 + t, 50);
            chaos_session(&name, &log, &FaultSchedule::none(), 2, 40 + t)
        })
        .collect();
    let discard: Sink = Arc::new(|_| {});

    let server = Server::start(cfg.clone(), Arc::clone(&discard)).unwrap();
    std::thread::scope(|scope| {
        for session in &sessions {
            let server = &server;
            let discard = Arc::clone(&discard);
            // First two attempts (cut connections) before the crash…
            scope.spawn(move || {
                for cut in &session.cuts {
                    for line in &session.lines[..cut.line] {
                        server.submit(line, &discard);
                    }
                    let frag = &session.lines[cut.line][..cut.byte];
                    if !frag.is_empty() {
                        server.submit(frag, &discard);
                    }
                }
            });
        }
    });
    server.abort();

    // …then the service crash-restarts and every client resends whole.
    let server = Server::start(cfg.clone(), Arc::clone(&discard)).unwrap();
    std::thread::scope(|scope| {
        for session in &sessions {
            let server = &server;
            let discard = Arc::clone(&discard);
            scope.spawn(move || {
                for line in &session.lines {
                    server.submit(line, &discard);
                }
            });
        }
    });
    let finals = server.drain();
    for session in &sessions {
        let want = solo_verdict(&cfg, &session.tenant, &delivered_lines(session));
        let got = final_for(&finals, &session.tenant);
        assert_eq!(
            report_slice(&got.verdict),
            report_slice(&want),
            "tenant {}: report diverged after crash + resend",
            session.tenant
        );
        assert!(want.contains(&format!("\"ok\":{}", got.ok.unwrap())));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill -9 the real binary mid-stdin, restart it on the same data
/// directory with a full resend, and require the final reports to match
/// an uninterrupted run's.
#[test]
fn binary_sigkill_restart_converges() {
    let dir = tmp_dir("bin_kill");
    let tenants: Vec<(String, Vec<String>)> = (0..2)
        .map(|t| {
            let name = format!("bk-{t}");
            (name.clone(), tagged_lines(&name, &tenant_log(700 + t, 40)))
        })
        .collect();
    let mut wire = String::new();
    let longest = tenants.iter().map(|(_, l)| l.len()).max().unwrap();
    for i in 0..longest {
        for (_, lines) in &tenants {
            if let Some(l) = lines.get(i) {
                wire.push_str(l);
                wire.push('\n');
            }
        }
    }
    let serve =
        |input: &str, data_dir: &std::path::Path, kill_after: Option<usize>| -> Vec<String> {
            let mut child = Command::new(env!("CARGO_BIN_EXE_elle-serve"))
                .args(["--data-dir", data_dir.to_str().unwrap()])
                .args([
                    "--epoch-txns",
                    "15",
                    "--snapshot-events",
                    "16",
                    "--workers",
                    "2",
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("binary runs");
            let mut stdin = child.stdin.take().unwrap();
            match kill_after {
                Some(n) => {
                    let upto: String = input.lines().take(n).map(|l| format!("{l}\n")).collect();
                    let _ = stdin.write_all(upto.as_bytes());
                    let _ = stdin.flush();
                    // Let the service ingest (and journal) some of it, then
                    // SIGKILL — no drain, no final seals.
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    child.kill().expect("kill");
                    let _ = child.wait();
                    Vec::new()
                }
                None => {
                    stdin.write_all(input.as_bytes()).unwrap();
                    drop(stdin); // EOF drains gracefully
                    let out = child.wait_with_output().expect("wait");
                    String::from_utf8_lossy(&out.stdout)
                        .lines()
                        .map(str::to_string)
                        .collect()
                }
            }
        };
    // Uninterrupted reference run on its own data dir.
    let dir_ref = tmp_dir("bin_ref");
    let want = serve(&wire, &dir_ref, None);
    // Crashed run: half the lines, SIGKILL, restart with a full resend.
    let half = wire.lines().count() / 2;
    serve(&wire, &dir, Some(half));
    let got = serve(&wire, &dir, None);
    for (name, _) in &tenants {
        let last = |lines: &[String]| -> String {
            lines
                .iter()
                .rfind(|l| {
                    l.contains(&format!("\"tenant\":\"{name}\"")) && l.contains("\"report\":")
                })
                .unwrap_or_else(|| panic!("no verdict for {name}"))
                .clone()
        };
        let w = last(&want);
        let g = last(&got);
        assert_eq!(
            report_slice(&w),
            report_slice(&g),
            "tenant {name}: post-SIGKILL report diverged"
        );
        assert_eq!(
            w.contains("\"ok\":true"),
            g.contains("\"ok\":true"),
            "tenant {name}: verdict flipped"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_ref);
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("elle_serve_suite_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A key-rotating workload (small per-key write budget) whose retired
/// keys quiesce quickly — the shape windowed retirement is built for.
fn rotating_log(seed: u64, txns: usize) -> elle::history::EventLog {
    let params = GenParams {
        n_txns: txns,
        min_txn_len: 1,
        max_txn_len: 3,
        active_keys: 2,
        writes_per_key: 4,
        read_prob: 0.4,
        kind: ObjectKind::ListAppend,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(seed ^ 0xabcd);
    elle::gen::run_workload_log(params, db)
}

/// The resident-byte budget ladder: a tenant that outgrows its budget is
/// degraded to `forced-window` — tightened retirement, kept serving, no
/// rejects — while its neighbours' verdicts stay byte-identical to a run
/// where the hog never existed.
#[test]
fn resident_budget_hog_degrades_to_forced_window_without_touching_neighbours() {
    let mut cfg = small_cfg();
    cfg.max_tenant_resident_bytes = Some(32 * 1024);
    let hog_lines = {
        let mut l = tagged_lines("hog", &rotating_log(810, 600));
        l.push("{\"tenant\":\"hog\",\"op\":\"status\"}".to_string());
        l
    };
    let neighbours: Vec<(String, Vec<String>)> = (0..2)
        .map(|t| {
            let name = format!("calm-{t}");
            let lines = tagged_lines(&name, &tenant_log(820 + t, 40));
            (name, lines)
        })
        .collect();

    let run = |with_hog: bool| -> (Vec<TenantFinal>, Vec<String>) {
        let (sink, lines) = collecting_sink();
        let server = Server::start(cfg.clone(), Arc::clone(&sink)).unwrap();
        std::thread::scope(|scope| {
            if with_hog {
                let server = &server;
                let sink = Arc::clone(&sink);
                let hog_lines = &hog_lines;
                scope.spawn(move || {
                    for line in hog_lines {
                        assert_eq!(
                            server.submit(line, &sink),
                            elle::serve::Submitted::Ok,
                            "hog must degrade to forced-window, never reject"
                        );
                    }
                });
            }
            for (_, lines) in &neighbours {
                let server = &server;
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for line in lines {
                        server.submit(line, &sink);
                    }
                });
            }
        });
        let finals = server.drain();
        let responses = lines.lock().unwrap().clone();
        (finals, responses)
    };

    let (without, _) = run(false);
    let (with, responses) = run(true);

    // The hog hit the hard rung: its envelopes/status carry the
    // forced_window gauge and windowed residency gauges.
    let hog_resp: Vec<&String> = responses
        .iter()
        .filter(|l| l.contains("\"tenant\":\"hog\""))
        .collect();
    assert!(
        hog_resp.iter().any(|l| l.contains("\"forced_window\":")),
        "hog never reached the forced-window rung: {hog_resp:?}"
    );
    assert!(
        hog_resp.iter().any(|l| l.contains("\"budget_seals\":")),
        "hog never crossed the soft budget rung"
    );
    let status = hog_resp
        .iter()
        .find(|l| l.contains("\"resident_bytes\":"))
        .expect("post-degradation status must expose residency gauges");
    assert!(status.contains("\"retired_txns\":"));
    assert!(
        !hog_resp.iter().any(|l| l.contains("\"code\":429")),
        "budget pressure must degrade, not reject"
    );
    // Degraded, not failed: the hog still produces a final verdict, and
    // the whole ladder is deterministic — the solo oracle under the same
    // config reproduces it byte-for-byte.
    let f = final_for(&with, "hog");
    assert!(f.ok.is_some(), "hog must keep serving under forced-window");
    let want = solo_verdict(&cfg, "hog", &hog_lines);
    assert_eq!(f.verdict, want, "budget ladder must be deterministic");

    // Neighbours are byte-identical with and without the hog.
    for (name, _) in &neighbours {
        assert_eq!(
            final_for(&with, name).verdict,
            final_for(&without, name).verdict,
            "neighbour {name} perturbed by another tenant's budget degradation"
        );
    }
}

/// Budget/window state is crash-durable: a windowed, budget-capped
/// tenant killed mid-ingest (snapshot + journal on disk) and restarted
/// must converge to the byte-identical final envelope of an
/// uninterrupted run — including the carried (possibly tightened)
/// window policy and retirement gauges.
#[test]
fn windowed_crash_recovery_preserves_budget_state() {
    let mut cfg = small_cfg();
    cfg.window = elle::stream::WindowPolicy::TxnCount(24);
    cfg.max_tenant_resident_bytes = Some(24 * 1024);
    let tenants: Vec<(String, Vec<String>)> = (0..2)
        .map(|t| {
            let name = format!("wcr-{t}");
            let lines = tagged_lines(&name, &rotating_log(840 + t, 300));
            (name, lines)
        })
        .collect();
    let mut wire: Vec<&String> = Vec::new();
    let longest = tenants.iter().map(|(_, l)| l.len()).max().unwrap();
    for i in 0..longest {
        for (_, lines) in &tenants {
            if let Some(l) = lines.get(i) {
                wire.push(l);
            }
        }
    }
    // Crash ~60% in, past the first forced retirements.
    let split = wire.len() * 3 / 5;
    let discard: Sink = Arc::new(|_| {});

    let dir_a = tmp_dir("wcr_a");
    let mut cfg_a = cfg.clone();
    cfg_a.data_dir = Some(dir_a.clone());
    let server = Server::start(cfg_a, Arc::clone(&discard)).unwrap();
    for line in &wire {
        server.submit(line, &discard);
    }
    let want = server.drain();

    let dir_b = tmp_dir("wcr_b");
    let mut cfg_b = cfg.clone();
    cfg_b.data_dir = Some(dir_b.clone());
    let server = Server::start(cfg_b.clone(), Arc::clone(&discard)).unwrap();
    for line in &wire[..split] {
        server.submit(line, &discard);
    }
    server.abort();
    let server = Server::start(cfg_b, Arc::clone(&discard)).unwrap();
    for line in &wire[split..] {
        server.submit(line, &discard);
    }
    let got = server.drain();

    for w in &want {
        let g = final_for(&got, &w.tenant);
        assert_eq!(
            g.verdict, w.verdict,
            "tenant {}: windowed crash recovery diverged",
            w.tenant
        );
        // The windowed gauges themselves survived: the final envelope
        // of a retiring tenant carries a window object.
        assert!(
            w.verdict.contains("\"window\":{"),
            "tenant {}: expected windowed gauges in the final envelope",
            w.tenant
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
