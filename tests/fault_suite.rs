//! Soundness under faults: the differential suite for the failure-
//! handling pipeline. For every datatype, hundreds of seeded runs
//! inject wire-level faults (duplicates, reorders, torn writes, bit
//! flips, crash recovery) into a clean simulated history and assert:
//!
//! * **no panics** — quarantine ingest plus checking always completes;
//! * **no fabrication** — with corruption disabled, every accepted
//!   event existed in the clean stream;
//! * **explained loss** — every clean event missing after recovery is
//!   accounted for by a recorded injected fault;
//! * **no false anomalies** — the faulted verdict reports no anomaly
//!   class the clean history doesn't, except garbage reads when whole
//!   transactions were lost (their writes become unattributable, which
//!   is precisely what GarbageRead means);
//! * **identity** — `FaultSchedule::none()` is byte-identical to the
//!   clean wire and strict ingest reproduces the clean history exactly.
//!
//! Checks run without real-time or timestamp edges: fault injection
//! deliberately breaks wall-clock assumptions (skew, reordering), and
//! a sound checker must not let those leak into logical anomalies.

use elle::prelude::*;
use elle_dbsim::FaultSchedule;
use elle_history::{events_from_ndjson_with, events_to_ndjson, NdjsonIngestor, RecoveryPolicy};
use std::collections::BTreeSet;

const KINDS: [ObjectKind; 4] = [
    ObjectKind::ListAppend,
    ObjectKind::Register,
    ObjectKind::Counter,
    ObjectKind::Set,
];

fn clean_log(kind: ObjectKind, seed: u64, n: usize) -> (elle_history::EventLog, CheckOptions) {
    let params = GenParams::contended(n, kind).with_seed(seed);
    let db = DbConfig::new(IsolationLevel::Serializable, kind)
        .with_processes(4)
        .with_seed(seed);
    let log = elle::gen::run_workload_log(params, db);
    // Logical edges only: fault injection invalidates wall-clock and
    // session assumptions by design, so a sound check must not use them.
    let opts = CheckOptions::serializable();
    (log, opts)
}

fn anomaly_types(r: &Report) -> BTreeSet<AnomalyType> {
    r.anomaly_counts.keys().copied().collect()
}

/// One faulted run: ingest the damaged wire under quarantine, check,
/// and enforce the fabrication / loss / false-anomaly invariants.
fn run_case(kind: ObjectKind, seed: u64, sched: &FaultSchedule) {
    let (clean, opts) = clean_log(kind, seed, 120);
    let (wire, faults) = sched.apply(&clean);

    // Full quarantine pipeline: decode + pair. Must never error.
    let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
    ing.feed_str(&wire)
        .unwrap_or_else(|e| panic!("{kind:?}/{seed}: quarantine errored: {e}"));
    let (history, diags) = ing.finish();

    // Event-index accounting. Accepted = what survived decode-level
    // recovery; explained = indices a recorded fault touched.
    let (accepted_log, _) = events_from_ndjson_with(&wire, RecoveryPolicy::Quarantine).unwrap();
    let accepted: BTreeSet<usize> = accepted_log.events().iter().map(|e| e.index).collect();
    let clean_idx: BTreeSet<usize> = clean.events().iter().map(|e| e.index).collect();
    let explained: BTreeSet<usize> = faults.faults.iter().map(|f| f.event_index).collect();

    let corrupting = sched.corrupt_prob > 0.0;
    if !corrupting {
        // Nothing fabricated: every accepted index existed cleanly.
        let fabricated: Vec<usize> = accepted.difference(&clean_idx).copied().collect();
        assert!(
            fabricated.is_empty(),
            "{kind:?}/{seed}: fabricated indices {fabricated:?}"
        );
    }
    // Every loss is explained by an injected fault.
    let unexplained: Vec<usize> = clean_idx
        .difference(&accepted)
        .filter(|i| !explained.contains(i))
        .copied()
        .collect();
    assert!(
        unexplained.is_empty(),
        "{kind:?}/{seed}: lost events {unexplained:?} with no recorded fault \
         ({} faults, {} diagnostics)",
        faults.len(),
        diags.len()
    );

    // Verdict soundness. Bit flips may alter payloads (values, keys)
    // undetectably, so corrupting schedules assert no-panic only.
    let faulted = Checker::new(opts)
        .try_check(&history)
        .unwrap_or_else(|e| panic!("{kind:?}/{seed}: {e}"));
    if corrupting {
        return;
    }
    let clean_report = Checker::new(opts).check(&clean.pair().unwrap());
    let clean_types = anomaly_types(&clean_report);
    // Delayed events arrive with regressed indices and are skipped, so
    // delays degrade to loss just like drops, torn writes, and crashes.
    let lossy = sched.drop_prob > 0.0
        || sched.torn_prob > 0.0
        || sched.crash_prob > 0.0
        || sched.delay_prob > 0.0;
    for t in anomaly_types(&faulted).difference(&clean_types) {
        // Losing a writer's events entirely makes its elements
        // unattributable: reads of them are garbage reads, by
        // definition. Nothing else may appear out of thin air.
        assert!(
            lossy && matches!(t, AnomalyType::GarbageRead),
            "{kind:?}/{seed}: false anomaly {t:?} (clean run has {clean_types:?})"
        );
    }
}

/// ≥200 seeded cases per datatype, mixing schedule shapes.
#[test]
fn soundness_under_faults_all_datatypes() {
    for kind in KINDS {
        for seed in 0..50u64 {
            // Light damage: duplicates are absorbed exactly; delays
            // degrade to (diagnosed) skips.
            run_case(
                kind,
                seed,
                &FaultSchedule {
                    duplicate_prob: 0.08,
                    delay_prob: 0.08,
                    delay_window: 4,
                    ..FaultSchedule::none()
                },
            );
            // The operational mix: everything but corruption.
            run_case(kind, seed, &FaultSchedule::typical(seed));
            // Heavy loss: drops, torn writes, crash recovery.
            run_case(
                kind,
                seed,
                &FaultSchedule {
                    drop_prob: 0.1,
                    torn_prob: 0.08,
                    crash_prob: 0.05,
                    clock_skew_ns: 50_000,
                    ..FaultSchedule::none()
                },
            );
            // Byzantine: bit flips on top — no-panic guarantee only.
            run_case(
                kind,
                seed,
                &FaultSchedule {
                    corrupt_prob: 0.05,
                    torn_prob: 0.05,
                    duplicate_prob: 0.05,
                    ..FaultSchedule::none()
                },
            );
        }
    }
}

/// `FaultSchedule::none()` is the identity, end to end: same bytes,
/// same history, zero diagnostics, even under the strict policy.
#[test]
fn none_schedule_is_the_identity() {
    for kind in KINDS {
        for seed in [1u64, 7, 42] {
            let (clean, _) = clean_log(kind, seed, 150);
            let sched = FaultSchedule::none();
            assert!(sched.is_none());
            let (wire, faults) = sched.apply(&clean);
            assert!(faults.is_empty(), "{kind:?}/{seed}: phantom faults");
            assert_eq!(
                wire,
                events_to_ndjson(&clean),
                "{kind:?}/{seed}: wire not byte-identical"
            );
            let mut ing = NdjsonIngestor::new(RecoveryPolicy::Strict);
            ing.feed_str(&wire).unwrap();
            let (h, diags) = ing.finish();
            assert!(diags.is_empty());
            assert_eq!(h, clean.pair().unwrap(), "{kind:?}/{seed}: history drifted");
        }
    }
}

/// A duplicates-only schedule is *fully* recovered: the salvaged
/// history — and therefore the verdict — is identical to the clean one.
#[test]
fn duplicates_are_recovered_exactly() {
    for kind in KINDS {
        for seed in 0..10u64 {
            let (clean, opts) = clean_log(kind, seed, 100);
            let sched = FaultSchedule {
                duplicate_prob: 0.25,
                ..FaultSchedule::none()
            };
            let (wire, faults) = sched.apply(&clean);
            let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
            ing.feed_str(&wire).unwrap();
            let (h, diags) = ing.finish();
            assert_eq!(
                diags.len(),
                faults.len(),
                "{kind:?}/{seed}: every duplicate diagnosed exactly once"
            );
            assert_eq!(h, clean.pair().unwrap(), "{kind:?}/{seed}");
            let a = Checker::new(opts).check(&h);
            let b = Checker::new(opts).check(&clean.pair().unwrap());
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
        }
    }
}
