//! The anomaly zoo: one hand-built, minimal history per anomaly class,
//! asserted to be caught and *correctly classified* — the paper's §7 notes
//! Elle's test suite demonstrates G0, G1a, G1b, G1c, and real-time /
//! process cycles; this file is that demonstration.

use elle::prelude::*;

fn check(h: &History) -> Report {
    Checker::new(CheckOptions::strict_serializable()).check(h)
}

fn has(r: &Report, t: AnomalyType) -> bool {
    r.anomaly_counts.contains_key(&t)
}

#[test]
fn zoo_g0_write_cycle() {
    // Two keys observed with opposite write orders.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(2, 2).at(0, Some(3)).commit();
    b.txn(1).append(1, 3).append(2, 4).at(1, Some(2)).commit();
    b.txn(2)
        .read_list(1, [1, 3])
        .read_list(2, [4, 2])
        .at(4, Some(5))
        .commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::G0), "{}", r.summary());
    let a = r.of_type(AnomalyType::G0).next().unwrap();
    assert!(
        a.explanation.contains("a contradiction!"),
        "{}",
        a.explanation
    );
}

#[test]
fn zoo_g1a_aborted_read() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).abort();
    b.txn(1).read_list(1, [1]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::G1a), "{}", r.summary());
}

#[test]
fn zoo_g1b_intermediate_read() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(1, 2).commit();
    b.txn(1).read_list(1, [1]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::G1b), "{}", r.summary());
}

#[test]
fn zoo_g1c_circular_information_flow() {
    // T0 -> T1 via wr on key 1; T1 -> T0 via ww on key 2.
    // Concurrent so no realtime contradiction confuses the picture.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(2, 1).at(0, Some(10)).commit();
    b.txn(1)
        .read_list(1, [1])
        .append(2, 2)
        .at(1, Some(9))
        .commit();
    b.txn(2).read_list(2, [2, 1]).at(11, Some(12)).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::G1c), "{}", r.summary());
}

#[test]
fn zoo_g_single_read_skew() {
    // The paper's Figure 2/3 shape: T1 misses T2's append but T3 proves
    // T1's append followed T2's.
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).at(0, Some(1)).commit();
    b.txn(9).append(34, 1).at(2, Some(3)).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(36, 5)
        .append(34, 4)
        .at(4, Some(8))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(7)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(9, Some(10))
        .commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::GSingle), "{}", r.summary());
    let a = r.of_type(AnomalyType::GSingle).next().unwrap();
    // Figure 2's phrasing.
    assert!(
        a.explanation.contains("did not observe"),
        "{}",
        a.explanation
    );
    assert!(
        a.explanation.contains("a contradiction!"),
        "{}",
        a.explanation
    );
}

#[test]
fn zoo_g2_item_write_skew() {
    // Classic write skew on two keys; concurrent transactions.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).at(0, Some(1)).commit();
    b.txn(1).append(2, 2).at(2, Some(3)).commit();
    b.txn(2)
        .read_list(1, [1])
        .read_list(2, [2])
        .append(3, 1)
        .at(4, Some(10))
        .commit();
    b.txn(3)
        .read_list(1, [1])
        .read_list(2, [2])
        .append(4, 1)
        .at(5, Some(9))
        .commit();
    b.txn(4)
        .read_list(3, [1])
        .read_list(4, [])
        .at(11, Some(12))
        .commit();
    b.txn(5)
        .read_list(4, [1])
        .read_list(3, [])
        .at(11, Some(12))
        .commit();
    // T4 proves T2 < T5's view; T5 proves T3 < T4's view … the mutual
    // misses of T4 and T5 close a two-rw cycle.
    let r = check(&b.build());
    assert!(
        r.types().iter().any(|t| t.base() == AnomalyType::G2Item),
        "{}",
        r.summary()
    );
}

#[test]
fn zoo_dirty_update() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).abort();
    b.txn(1).append(1, 2).commit();
    b.txn(2).read_list(1, [1, 2]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::DirtyUpdate), "{}", r.summary());
}

#[test]
fn zoo_lost_update() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).commit();
    b.txn(1).read_list(1, [1]).append(1, 2).commit();
    b.txn(2).read_list(1, [1]).append(1, 3).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::LostUpdate), "{}", r.summary());
}

#[test]
fn zoo_garbage_read() {
    let mut b = HistoryBuilder::new();
    b.txn(0).read_list(1, [99]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::GarbageRead), "{}", r.summary());
}

#[test]
fn zoo_duplicate_write() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).commit();
    b.txn(1).read_list(1, [1, 1]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::DuplicateWrite), "{}", r.summary());
}

#[test]
fn zoo_internal_inconsistency() {
    // §7.3's example: T1: append(0, 6), r(0, nil).
    let mut b = HistoryBuilder::new();
    b.txn(0).append(0, 6).read_list(0, []).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::Internal), "{}", r.summary());
}

#[test]
fn zoo_incompatible_order() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).commit();
    b.txn(1).append(1, 2).commit();
    b.txn(2).read_list(1, [1, 2]).commit();
    b.txn(3).read_list(1, [2, 1]).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::IncompatibleOrder), "{}", r.summary());
}

#[test]
fn zoo_cyclic_version_order() {
    // §7.4: a write completes long before a read that returns nil, under
    // the per-key linearizability assumption.
    let mut b = HistoryBuilder::new();
    b.txn(0).write(540, 2).at(0, Some(1)).commit();
    b.txn(1).read_register(540, None).at(5, Some(6)).commit();
    let opts = CheckOptions::snapshot_isolation().with_registers(RegisterOptions {
        initial_state: true,
        writes_follow_reads: true,
        sequential_keys: false,
        linearizable_keys: true,
    });
    let r = Checker::new(opts).check(&b.build());
    assert!(has(&r, AnomalyType::CyclicVersionOrder), "{}", r.summary());
}

#[test]
fn zoo_realtime_cycle() {
    // Serializable but not strict: a read ignores a write that completed
    // before it started.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).at(0, Some(1)).commit();
    b.txn(1).read_list(1, []).at(2, Some(3)).commit();
    b.txn(2).read_list(1, [1]).at(4, Some(5)).commit();
    let r = check(&b.build());
    assert!(has(&r, AnomalyType::GSingleRealtime), "{}", r.summary());
    // Without realtime edges, nothing to report.
    let r2 = Checker::new(CheckOptions::serializable()).check(&{
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).read_list(1, []).at(2, Some(3)).commit();
        b.txn(2).read_list(1, [1]).at(4, Some(5)).commit();
        b.build()
    });
    assert!(r2.ok(), "{}", r2.summary());
}

#[test]
fn zoo_process_cycle() {
    // A single process observes, then un-observes, a write (§5.1's
    // monotonicity example) — with overlapping real-time so only the
    // session order closes the cycle.
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).at(0, Some(100)).commit();
    b.txn(1).read_list(1, [1]).at(1, Some(99)).commit(); // process 1
    b.txn(1).read_list(1, []).at(2, Some(98)).commit(); // process 1 again
    let opts = CheckOptions::serializable()
        .with_process_edges(true)
        .with_realtime_edges(false);
    let r = Checker::new(opts).check(&b.build());
    assert!(
        r.types()
            .iter()
            .any(|t| matches!(t, AnomalyType::GSingleProcess | AnomalyType::G1cProcess)),
        "{}",
        r.summary()
    );
}

#[test]
fn zoo_clean_histories_stay_clean() {
    // A moderately rich, correct history across all four datatypes.
    let mut b = HistoryBuilder::new();
    b.txn(0)
        .append(1, 1)
        .write(10, 1)
        .increment(20, 2)
        .add_to_set(30, 1)
        .commit();
    b.txn(1)
        .read_list(1, [1])
        .read_register(10, Some(1))
        .read_counter(20, 2)
        .read_set(30, [1])
        .commit();
    b.txn(2)
        .append(1, 2)
        .write(10, 2)
        .increment(20, 3)
        .add_to_set(30, 2)
        .commit();
    b.txn(3)
        .read_list(1, [1, 2])
        .read_register(10, Some(2))
        .read_counter(20, 5)
        .read_set(30, [1, 2])
        .commit();
    let r = check(&b.build());
    assert!(r.ok(), "{}", r.summary());
    assert!(r.anomalies.is_empty(), "{}", r.summary());
}

// ── Damaged-stream fixtures, end to end through both CLIs ───────────────
//
// Two pinned NDJSON streams model real operational failures:
//
// * `crash_recovery.ndjson` — a client crashes mid-transaction and its
//   replacement reuses the process id, so a second invocation arrives
//   while the first is still outstanding;
// * `lost_ack.ndjson` — an invocation line is lost in transit, so its
//   completion arrives orphaned.
//
// Strict mode must refuse each (exit 2, position on stderr); quarantine
// mode must salvage each into a *clean* verdict (exit 0) with exactly
// one diagnostic.

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(bin: &str, args: &[&str]) -> (i32, String, String) {
    let out = std::process::Command::new(bin)
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn zoo_fixture_streams_through_both_clis() {
    let check = env!("CARGO_BIN_EXE_elle-check");
    let stream = env!("CARGO_BIN_EXE_elle-stream");
    for (name, bad_line, action) in [
        (
            "crash_recovery.ndjson",
            "line 4",
            "abandoned as indeterminate",
        ),
        ("lost_ack.ndjson", "line 3", "orphan completion adopted"),
    ] {
        let path = fixture(name);
        for bin in [check, stream] {
            // Strict: refused, positioned, exit 2.
            let (code, _, err) = run(bin, &[&path]);
            assert_eq!(code, 2, "{name} via {bin} must be refused strictly");
            assert!(err.contains(bad_line), "{name} via {bin}: {err}");

            // Quarantine: salvaged to a clean verdict, one diagnostic.
            let (code, _, err) = run(bin, &[&path, "--quarantine"]);
            assert_eq!(code, 0, "{name} via {bin} must salvage cleanly: {err}");
            assert_eq!(
                err.matches("quarantined:").count(),
                1,
                "{name} via {bin}: {err}"
            );
            assert!(err.contains(action), "{name} via {bin}: {err}");
        }
    }
}

#[test]
fn zoo_fixture_verdicts_match_between_clis() {
    // The salvaged history is the same through either entry point: the
    // batch CLI's report equals the final epoch report of the stream CLI.
    let check = env!("CARGO_BIN_EXE_elle-check");
    let stream = env!("CARGO_BIN_EXE_elle-stream");
    for name in ["crash_recovery.ndjson", "lost_ack.ndjson"] {
        let path = fixture(name);
        let (_, batch, _) = run(check, &[&path, "--quarantine", "--json"]);
        let batch: Report = serde_json::from_str(&batch).expect("batch report parses");
        let (_, epochs, _) = run(stream, &[&path, "--quarantine", "--json"]);
        let last = epochs.lines().last().expect("at least one epoch");
        // The epoch line is `{...,"report":{...}}`; the report object is
        // its final member.
        let report_json = last
            .split_once("\"report\":")
            .map(|(_, rest)| &rest[..rest.len() - 1])
            .expect("epoch line carries a report");
        let streamed: Report = serde_json::from_str(report_json).expect("epoch report parses");
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&streamed).unwrap(),
            "{name}: batch and stream disagree"
        );
    }
}
