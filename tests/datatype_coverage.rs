//! End-to-end coverage for the less-informative datatypes (§3, §5.2):
//! sets and counters through the full generate → simulate → check
//! pipeline, and mixed-type histories.

use elle::prelude::*;

fn run(kind: ObjectKind, iso: IsolationLevel, seed: u64) -> History {
    let params = GenParams {
        n_txns: 400,
        min_txn_len: 2,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 64,
        read_prob: 0.5,
        kind,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(iso, kind).with_processes(8).with_seed(seed);
    run_workload(params, db).unwrap()
}

#[test]
fn set_workloads_clean_under_strict_serializability() {
    for seed in [1, 2] {
        let h = run(ObjectKind::Set, IsolationLevel::StrictSerializable, seed);
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        assert!(r.anomalies.is_empty(), "seed {seed}:\n{}", r.summary());
    }
}

#[test]
fn set_workloads_under_read_committed_stay_monotone() {
    // Set reads under RC are supersets of earlier committed state, so
    // incompatible orders and G1-family must never appear; anti-dependency
    // cycles may.
    for seed in 1..=4 {
        let h = run(ObjectKind::Set, IsolationLevel::ReadCommitted, seed);
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        for t in r.types() {
            assert!(
                !matches!(
                    t,
                    AnomalyType::G1a | AnomalyType::GarbageRead | AnomalyType::IncompatibleOrder
                ),
                "seed {seed}: unexpected {t}\n{}",
                r.summary()
            );
        }
    }
}

#[test]
fn counter_workloads_clean_under_strict_serializability() {
    for seed in [1, 2] {
        let h = run(
            ObjectKind::Counter,
            IsolationLevel::StrictSerializable,
            seed,
        );
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        assert!(r.ok(), "seed {seed}:\n{}", r.summary());
        assert!(r.anomalies.is_empty(), "seed {seed}:\n{}", r.summary());
    }
}

#[test]
fn counter_reads_never_exceed_bounds_in_simulator() {
    // Even under weak isolation the simulator's counters stay within the
    // reachable range, so no garbage reads are reported.
    for iso in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let h = run(ObjectKind::Counter, iso, 3);
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        assert!(
            !r.anomaly_counts.contains_key(&AnomalyType::GarbageRead),
            "{iso:?}:\n{}",
            r.summary()
        );
    }
}

#[test]
fn sets_detect_injected_aborted_reads() {
    // Hand-built: a set read exposing an aborted add.
    let mut b = HistoryBuilder::new();
    b.txn(0).add_to_set(1, 5).abort();
    b.txn(1).read_set(1, [5]).commit();
    let r = Checker::new(CheckOptions::read_committed()).check(&b.build());
    assert!(!r.ok(), "{}", r.summary());
    assert!(r.anomaly_counts.contains_key(&AnomalyType::G1a));
}

#[test]
fn counters_detect_injected_garbage() {
    let mut b = HistoryBuilder::new();
    b.txn(0).increment(1, 2).commit();
    b.txn(1).read_counter(1, 99).commit();
    let r = Checker::new(CheckOptions::read_committed()).check(&b.build());
    assert!(r.anomaly_counts.contains_key(&AnomalyType::GarbageRead));
}

#[test]
fn mixed_datatype_history_checks_each_key_with_its_own_rules() {
    // One history containing all four datatypes; a violation on the list
    // key must be found while the other keys stay quiet.
    let mut b = HistoryBuilder::new();
    b.txn(0)
        .append(1, 1)
        .write(10, 1)
        .increment(20, 1)
        .add_to_set(30, 1)
        .commit();
    // List anomaly: aborted read.
    b.txn(1).append(1, 2).abort();
    b.txn(2).read_list(1, [1, 2]).commit();
    // Healthy reads elsewhere.
    b.txn(3)
        .read_register(10, Some(1))
        .read_counter(20, 1)
        .read_set(30, [1])
        .commit();
    let r = Checker::new(CheckOptions::read_committed()).check(&b.build());
    let g1a: Vec<_> = r.of_type(AnomalyType::G1a).collect();
    assert_eq!(g1a.len(), 1);
    assert_eq!(g1a[0].key, Some(Key(1)));
}

#[test]
fn set_cycle_detection_via_rw_edges() {
    // Two transactions that each miss the other's add: G2-item on sets.
    let mut b = HistoryBuilder::new();
    b.txn(0)
        .read_set(1, [])
        .add_to_set(2, 10)
        .at(0, Some(10))
        .commit();
    b.txn(1)
        .read_set(2, [])
        .add_to_set(1, 20)
        .at(1, Some(9))
        .commit();
    let r = Checker::new(CheckOptions::serializable()).check(&b.build());
    assert!(
        r.types().iter().any(|t| t.base() == AnomalyType::G2Item),
        "{}",
        r.summary()
    );
}

#[test]
fn counter_rr_plus_realtime_cycle() {
    // A counter read observes a smaller value *after* a larger one was
    // read and completed: rr + realtime cycle.
    let mut b = HistoryBuilder::new();
    b.txn(0).increment(1, 1).at(0, Some(1)).commit();
    b.txn(1).increment(1, 1).at(2, Some(3)).commit();
    b.txn(2).read_counter(1, 2).at(4, Some(5)).commit();
    b.txn(3).read_counter(1, 1).at(6, Some(7)).commit(); // stale!
    let r = Checker::new(CheckOptions::strict_serializable()).check(&b.build());
    assert!(!r.ok(), "{}", r.summary());
    // The cycle needs the rr edge (T3 < T2 by value) and realtime
    // (T2 completed before T3 invoked).
    assert!(
        r.types()
            .iter()
            .any(|t| matches!(t, AnomalyType::G1cRealtime | AnomalyType::GSingleRealtime)),
        "{}",
        r.summary()
    );
}
