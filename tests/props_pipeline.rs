//! End-to-end property tests: the simulator and checker validate each
//! other across randomized parameters.

use elle::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = (GenParams, u64, usize)> {
    (
        1usize..=5,   // max txn len
        1usize..=6,   // active keys
        1u64..=128,   // writes per key
        0.0f64..=0.9, // read prob
        any::<u64>(), // seed
        1usize..=8,   // processes
        50usize..=200,
    )
        .prop_map(|(len, keys, wpk, rp, seed, procs, n)| {
            (
                GenParams {
                    n_txns: n,
                    min_txn_len: 1,
                    max_txn_len: len,
                    active_keys: keys,
                    writes_per_key: wpk,
                    read_prob: rp,
                    kind: ObjectKind::ListAppend,
                    seed,
                    final_reads: false,
                },
                seed,
                procs,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness, jointly: a strict-serializable engine must never trip
    /// the checker, for any workload shape, seed, or fault plan.
    #[test]
    fn strict_serializable_engine_is_never_flagged((params, seed, procs) in arb_params(),
                                                   faults in prop::bool::ANY) {
        let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed)
            .with_faults(if faults { FaultPlan::typical() } else { FaultPlan::none() });
        let h = run_workload(params, db).unwrap();
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        prop_assert!(r.ok(), "{}", r.summary());
        prop_assert!(r.anomalies.is_empty(), "{}", r.summary());
    }

    /// Snapshot isolation never produces SI-proscribed anomalies.
    #[test]
    fn snapshot_isolation_engine_respects_si((params, seed, procs) in arb_params()) {
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let h = run_workload(params, db).unwrap();
        let r = Checker::new(
            CheckOptions::snapshot_isolation()
                .with_process_edges(true)
                .with_realtime_edges(true),
        )
        .check(&h);
        prop_assert!(r.ok(), "{}", r.summary());
    }

    /// Committed reads of one key always form a prefix chain under
    /// snapshot isolation and stronger (traceability in action).
    #[test]
    fn committed_reads_form_prefix_chains((params, seed, procs) in arb_params()) {
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let h = run_workload(params, db).unwrap();
        let mut longest: std::collections::HashMap<Key, Vec<Elem>> = Default::default();
        for t in h.committed() {
            for (_, k, v) in t.observed_reads() {
                if let Some(l) = v.as_list() {
                    let slot = longest.entry(k).or_default();
                    if l.len() > slot.len() {
                        *slot = l.to_vec();
                    }
                }
            }
        }
        for t in h.committed() {
            for (_, k, v) in t.observed_reads() {
                if let Some(l) = v.as_list() {
                    let lg = &longest[&k];
                    prop_assert_eq!(&lg[..l.len()], l, "key {} read not a prefix", k);
                }
            }
        }
    }

    /// The generator never reuses a write argument (recoverability).
    #[test]
    fn generator_maintains_recoverability((params, seed, procs) in arb_params()) {
        let db = DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let h = run_workload(params, db).unwrap();
        prop_assert!(elle::history::duplicate_written_elems(&h).is_empty());
    }

    /// Checking is deterministic: same history, same report.
    #[test]
    fn checker_is_deterministic((params, seed, procs) in arb_params()) {
        let db = DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let h = run_workload(params, db).unwrap();
        let r1 = Checker::new(CheckOptions::strict_serializable()).check(&h);
        let r2 = Checker::new(CheckOptions::strict_serializable()).check(&h);
        prop_assert_eq!(serde_json::to_string(&r1).unwrap(),
                        serde_json::to_string(&r2).unwrap());
    }
}
