//! The `elle-check` command-line interface, end to end.

use elle::prelude::*;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-check"))
}

#[test]
fn demo_flags_violation_with_exit_code_1() {
    let out = bin()
        .args(["--demo", "--model", "snapshot-isolation"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("G-single"), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
}

#[test]
fn checks_a_history_file() {
    // Generate a clean strict-serializable history and write it out.
    let params = GenParams::contended(100, ObjectKind::ListAppend).with_seed(3);
    let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(3);
    let h = run_workload(params, db).unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join("elle_cli_test_history.json");
    std::fs::write(&path, elle::history::history_to_json(&h)).unwrap();

    let out = bin()
        .args([
            path.to_str().unwrap(),
            "--model",
            "strict-serializable",
            "--process",
            "--realtime",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no anomalies found"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn json_output_parses_as_report() {
    let out = bin()
        .args(["--demo", "--json"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report: Report = serde_json::from_str(&stdout).expect("valid report JSON");
    assert!(!report.anomalies.is_empty());
}

/// The checked-in fixture: the paper's §7.1 TiDB trio (a G-single
/// violation under snapshot isolation), as `history_to_json` wire data.
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/tidb_g_single.json"
);

#[test]
fn help_smoke() {
    // An explicit help request is a success: help on stdout, exit 0.
    let out = bin().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: elle-check"), "{stdout}");
    for flag in [
        "--model",
        "--process",
        "--realtime",
        "--timestamps",
        "--json",
        "--demo",
    ] {
        assert!(stdout.contains(flag), "missing {flag} in usage:\n{stdout}");
    }
    assert!(stdout.contains("strict-serializable"), "{stdout}");
    // A usage *error* still reports on stderr with exit 2.
    let out = bin().arg("--no-such-flag").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: elle-check"));
}

#[test]
fn fixture_round_trips_through_serde_io() {
    let raw = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let h = elle::history::history_from_json(&raw).expect("fixture parses");
    assert_eq!(h.len(), 5);
    // Byte-stable round trip: parse(serialize(parse(x))) == parse(x),
    // and serialization itself is deterministic.
    let json = elle::history::history_to_json(&h);
    let h2 = elle::history::history_from_json(&json).expect("round trip parses");
    assert_eq!(h, h2);
    assert_eq!(json, elle::history::history_to_json(&h2));
    // The checked-in fixture is exactly what we would write today.
    assert_eq!(json, raw.trim_end());
}

#[test]
fn fixture_flags_g_single_under_snapshot_isolation() {
    let out = bin()
        .args([FIXTURE, "--model", "snapshot-isolation"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("G-single"), "{stdout}");
}

#[test]
fn timing_prints_stage_breakdown_on_stderr() {
    let out = bin()
        .args([FIXTURE, "--model", "snapshot-isolation", "--timing"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for stage in [
        "parse + pairing",
        "key typing + element index",
        "datatype inference",
        "freeze",
        "cycle search",
        "total",
    ] {
        assert!(stderr.contains(stage), "missing {stage} in:\n{stderr}");
    }
    // The report itself still goes to stdout, untouched.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("G-single"), "{stdout}");
    // --timing appears in the usage text.
    let help = bin().arg("--help").output().expect("binary runs");
    assert!(String::from_utf8_lossy(&help.stdout).contains("--timing"));
}

#[test]
fn bad_usage_exits_2() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["--demo", "--model", "no-such-model"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["/nonexistent/file.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
