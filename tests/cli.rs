//! The `elle-check` command-line interface, end to end.

use elle::prelude::*;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elle-check"))
}

#[test]
fn demo_flags_violation_with_exit_code_1() {
    let out = bin()
        .args(["--demo", "--model", "snapshot-isolation"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("G-single"), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
}

#[test]
fn checks_a_history_file() {
    // Generate a clean strict-serializable history and write it out.
    let params = GenParams::contended(100, ObjectKind::ListAppend).with_seed(3);
    let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(3);
    let h = run_workload(params, db).unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join("elle_cli_test_history.json");
    std::fs::write(&path, elle::history::history_to_json(&h)).unwrap();

    let out = bin()
        .args([
            path.to_str().unwrap(),
            "--model",
            "strict-serializable",
            "--process",
            "--realtime",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no anomalies found"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn json_output_parses_as_report() {
    let out = bin()
        .args(["--demo", "--json"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report: Report = serde_json::from_str(&stdout).expect("valid report JSON");
    assert!(!report.anomalies.is_empty());
}

#[test]
fn bad_usage_exits_2() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["--demo", "--model", "no-such-model"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["/nonexistent/file.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
