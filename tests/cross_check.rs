//! The three-engine differential suite: Elle's sound cycle search, the
//! complete SAT cross-checker (`elle::sat`), and the WGL-style DFS
//! baseline (`elle::knossos`) on the same seeded histories, across all
//! four datatypes, clean and faulty.
//!
//! The invariants are one-directional, matching each engine's
//! guarantees:
//!
//! * cycle search is *sound*: any anomaly it reports under a model must
//!   make the SAT encoding of that model unsatisfiable;
//! * SAT is *complete*: a satisfiable serializable encoding means a
//!   legal serial order exists, which we replay and verify;
//! * a serial order is a legal snapshot-isolation execution, so
//!   SER-satisfiable implies SI-satisfiable;
//! * a DFS linearization is in particular a serialization, so DFS `Ok`
//!   implies SER-satisfiable — and SER-violated implies the DFS cannot
//!   find one.
//!
//! The converses are the paper's documented completeness gap (the cycle
//! search can miss anomalies SAT proves, and strict serializability is
//! stricter than serializability), so they are *not* asserted.
//!
//! Disagreements are delta-debugged before being reported: the SAT
//! witness is re-checked as a standalone sub-history, so a failure
//! message names a minimal, self-certifying counterexample.

use elle::prelude::*;
use std::time::Duration;

fn sat_check(h: &History, model: SatModel) -> SatVerdict {
    elle::sat::check(h, model, &SatOptions::default()).verdict
}

fn cycle_report(h: &History, model: ConsistencyModel) -> Report {
    let opts = match model {
        ConsistencyModel::Serializable => CheckOptions::serializable(),
        ConsistencyModel::SnapshotIsolation => CheckOptions::snapshot_isolation(),
        other => panic!("no SAT counterpart for {other}"),
    };
    Checker::new(opts).check(h)
}

fn dfs(h: &History, budget: Duration) -> KnossosOutcome {
    elle::knossos::check(h, KnossosOptions::default().with_budget(budget)).outcome
}

/// Re-check a violation witness as a standalone history: the minimal
/// counterexample must still violate the model on its own. This is the
/// delta-debugging step that keeps disagreement reports small.
fn witness_self_certifies(h: &History, model: SatModel, witness: &[TxnId]) {
    assert!(!witness.is_empty(), "violation with an empty witness");
    for t in witness {
        assert!(
            (t.0 as usize) < h.len(),
            "witness names {t} but the history has {} transactions",
            h.len()
        );
    }
    let sub = elle::sat::sub_history(h, witness);
    let v = sat_check(&sub, model);
    assert!(
        matches!(v, SatVerdict::Violated { .. }),
        "witness sub-history of {} txns does not self-certify: {v:?}",
        witness.len()
    );
}

/// The cross-engine invariants on one history. Returns true when some
/// model was violated (so callers can assert the sweep saw anomalies).
fn cross_check(h: &History, label: &str) -> bool {
    let mut any_violated = false;
    let mut certified = false;
    let mut ser_satisfiable = false;
    for (cm, sm) in [
        (ConsistencyModel::Serializable, SatModel::Serializable),
        (
            ConsistencyModel::SnapshotIsolation,
            SatModel::SnapshotIsolation,
        ),
    ] {
        let cycle = cycle_report(h, cm);
        let sat = sat_check(h, sm);
        match &sat {
            SatVerdict::Unsupported { .. } => continue, // counters
            SatVerdict::Unknown { reason } => panic!("{label}: SAT budget blown: {reason}"),
            SatVerdict::Satisfiable { order } => {
                assert!(
                    cycle.ok(),
                    "{label}: DISAGREEMENT under {cm}: cycle search found {} \
                     anomalies but SAT found a legal order:\n{}",
                    cycle.anomalies.len(),
                    cycle.summary()
                );
                if sm == SatModel::Serializable {
                    ser_satisfiable = true;
                    elle::sat::verify_serial_order(h, order)
                        .unwrap_or_else(|e| panic!("{label}: decoded order fails replay: {e}"));
                }
            }
            SatVerdict::Violated { witness, .. } => {
                any_violated = true;
                // Certify one witness per history (it re-runs the
                // solver); every witness must at least name real txns.
                for t in witness {
                    assert!((t.0 as usize) < h.len(), "{label}: witness names {t}");
                }
                if !certified {
                    witness_self_certifies(h, sm, witness);
                    certified = true;
                }
            }
        }
        if sm == SatModel::SnapshotIsolation && ser_satisfiable {
            assert!(
                matches!(sat, SatVerdict::Satisfiable { .. }),
                "{label}: serializable but not snapshot-isolation?"
            );
        }
    }
    any_violated
}

fn generated(kind: ObjectKind, iso: IsolationLevel, seed: u64, faults: bool) -> History {
    let params = GenParams {
        n_txns: 60,
        min_txn_len: 1,
        max_txn_len: 4,
        active_keys: 3,
        writes_per_key: 32,
        read_prob: 0.5,
        kind,
        seed,
        final_reads: false,
    };
    let mut db = DbConfig::new(iso, kind).with_processes(3).with_seed(seed);
    if faults {
        db = db.with_faults(FaultPlan {
            info_prob: 0.1,
            server_abort_prob: 0.05,
            crash_on_info: true,
        });
    }
    run_workload(params, db).unwrap()
}

/// ≥ 200 seeded histories for one datatype: isolation levels from
/// strict down to read-committed, clean and faulty, plus a buggy-db leg
/// that manufactures real anomalies.
fn sweep(kind: ObjectKind) {
    let mut violated = 0usize;
    let mut total = 0usize;
    for iso in [
        IsolationLevel::StrictSerializable,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::ReadCommitted,
    ] {
        for faults in [false, true] {
            for seed in 1..=17 {
                let h = generated(kind, iso, seed, faults);
                let label = format!("{kind:?}/{iso:?}/faults={faults}/seed={seed}");
                if cross_check(&h, &label) {
                    violated += 1;
                }
                total += 1;
            }
        }
    }
    // A buggy database to guarantee the violated path is exercised
    // (weak isolation alone can stay clean at this scale).
    for seed in 1..=100 {
        let params = GenParams {
            n_txns: 60,
            min_txn_len: 2,
            max_txn_len: 4,
            active_keys: 2,
            writes_per_key: 64,
            read_prob: 0.5,
            kind,
            seed,
            final_reads: false,
        };
        let db = DbConfig::new(IsolationLevel::SnapshotIsolation, kind)
            .with_processes(3)
            .with_seed(seed)
            .with_bug(Bug::SilentRetry);
        let h = run_workload(params, db).unwrap();
        if cross_check(&h, &format!("{kind:?}/SilentRetry/seed={seed}")) {
            violated += 1;
        }
        total += 1;
    }
    assert!(total >= 200, "sweep ran only {total} histories");
    if kind != ObjectKind::Counter {
        assert!(
            violated > 0,
            "{kind:?}: no seed produced a violation — the violated path went untested"
        );
    }
}

#[test]
fn cross_check_list_histories() {
    sweep(ObjectKind::ListAppend);
}

#[test]
fn cross_check_register_histories() {
    sweep(ObjectKind::Register);
}

#[test]
fn cross_check_set_histories() {
    sweep(ObjectKind::Set);
}

#[test]
fn cross_check_counter_histories() {
    // Counters are outside the SAT engine's model: the cross-check is
    // vacuous (Unsupported), but must be *cleanly* vacuous on every
    // seed, and the cycle engine still runs.
    sweep(ObjectKind::Counter);
    let h = generated(
        ObjectKind::Counter,
        IsolationLevel::SnapshotIsolation,
        1,
        false,
    );
    assert!(matches!(
        sat_check(&h, SatModel::Serializable),
        SatVerdict::Unsupported { .. }
    ));
}

#[test]
fn dfs_agrees_with_sat_on_list_histories() {
    let budget = Duration::from_secs(5);
    let mut decided = 0usize;
    for seed in 1..=10 {
        for iso in [
            IsolationLevel::StrictSerializable,
            IsolationLevel::SnapshotIsolation,
        ] {
            let h = generated(ObjectKind::ListAppend, iso, seed, false);
            let d = dfs(&h, budget);
            let s = sat_check(&h, SatModel::Serializable);
            match d {
                KnossosOutcome::Unknown => continue, // budget exhausted: no claim
                KnossosOutcome::Ok => {
                    // A linearization is in particular a serialization.
                    assert!(
                        matches!(s, SatVerdict::Satisfiable { .. }),
                        "seed {seed}/{iso:?}: DFS linearized but SAT says {s:?}"
                    );
                }
                KnossosOutcome::Violation => {
                    // Strictness gap: not-strict-1SR may still be
                    // serializable, so only the converse is checkable.
                }
            }
            if let SatVerdict::Violated { ref witness, .. } = s {
                assert_ne!(
                    d,
                    KnossosOutcome::Ok,
                    "seed {seed}/{iso:?}: SAT proved unserializable (witness {witness:?}) \
                     but DFS found a linearization"
                );
            }
            decided += 1;
        }
    }
    assert!(decided > 0, "every DFS run blew its budget");
}

// ---------------------------------------------------------------------
// Pinned anomaly-zoo fixtures: the same minimal shapes tests/anomaly_zoo.rs
// pins for the cycle engine, re-asserted through all engines.
// ---------------------------------------------------------------------

fn assert_violated(h: &History, model: SatModel, name: &str) {
    match sat_check(h, model) {
        SatVerdict::Violated { witness, .. } => witness_self_certifies(h, model, &witness),
        v => panic!("{name}: expected {model} violated, got {v:?}"),
    }
}

fn assert_satisfiable(h: &History, model: SatModel, name: &str) {
    let v = sat_check(h, model);
    assert!(
        matches!(v, SatVerdict::Satisfiable { .. }),
        "{name}: expected {model} satisfiable, got {v:?}"
    );
}

#[test]
fn zoo_g0_write_cycle_all_engines() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(2, 2).at(0, Some(3)).commit();
    b.txn(1).append(1, 3).append(2, 4).at(1, Some(2)).commit();
    b.txn(2)
        .read_list(1, [1, 3])
        .read_list(2, [4, 2])
        .at(4, Some(5))
        .commit();
    let h = b.build();
    assert!(!cycle_report(&h, ConsistencyModel::Serializable).ok());
    assert_violated(&h, SatModel::Serializable, "g0");
    assert_violated(&h, SatModel::SnapshotIsolation, "g0");
    assert_eq!(dfs(&h, Duration::from_secs(5)), KnossosOutcome::Violation);
}

#[test]
fn zoo_g1a_aborted_read_all_engines() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).abort();
    b.txn(1).read_list(1, [1]).commit();
    let h = b.build();
    assert!(!cycle_report(&h, ConsistencyModel::Serializable).ok());
    assert_violated(&h, SatModel::Serializable, "g1a");
    assert_violated(&h, SatModel::SnapshotIsolation, "g1a");
}

#[test]
fn zoo_g1b_intermediate_read_all_engines() {
    let mut b = HistoryBuilder::new();
    b.txn(0).append(1, 1).append(1, 2).commit();
    b.txn(1).read_list(1, [1]).commit();
    let h = b.build();
    assert!(!cycle_report(&h, ConsistencyModel::Serializable).ok());
    assert_violated(&h, SatModel::Serializable, "g1b");
    assert_violated(&h, SatModel::SnapshotIsolation, "g1b");
}

#[test]
fn zoo_g_single_read_skew_all_engines() {
    // The paper's §7.1 TiDB trio (elle-check's --demo history).
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(36, 5)
        .append(34, 4)
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    let h = b.build();
    assert!(!cycle_report(&h, ConsistencyModel::Serializable).ok());
    assert!(!cycle_report(&h, ConsistencyModel::SnapshotIsolation).ok());
    assert_violated(&h, SatModel::Serializable, "g-single");
    assert_violated(&h, SatModel::SnapshotIsolation, "g-single");
    assert_eq!(dfs(&h, Duration::from_secs(5)), KnossosOutcome::Violation);
}

#[test]
fn zoo_write_skew_splits_the_models_all_engines() {
    // Classic register write skew: G2-item, legal under SI.
    let mut b = HistoryBuilder::new();
    b.txn(0).write(1, 10).write(2, 10).at(0, Some(1)).commit();
    b.txn(1)
        .read_register(1, Some(10))
        .read_register(2, Some(10))
        .write(1, 11)
        .at(2, Some(10))
        .commit();
    b.txn(2)
        .read_register(1, Some(10))
        .read_register(2, Some(10))
        .write(2, 12)
        .at(3, Some(9))
        .commit();
    let h = b.build();
    assert_violated(&h, SatModel::Serializable, "write-skew");
    assert_satisfiable(&h, SatModel::SnapshotIsolation, "write-skew");
}

#[test]
fn zoo_lost_update_all_engines() {
    // Both writers read the same version then overwrite: first-committer-
    // wins forbids it under SI, and no serial order explains it either.
    let mut b = HistoryBuilder::new();
    b.txn(0).write(1, 10).at(0, Some(1)).commit();
    b.txn(1)
        .read_register(1, Some(10))
        .write(1, 11)
        .at(2, Some(10))
        .commit();
    b.txn(2)
        .read_register(1, Some(10))
        .write(1, 12)
        .at(3, Some(9))
        .commit();
    b.txn(3)
        .read_register(1, Some(11))
        .at(11, Some(12))
        .commit();
    b.txn(4)
        .read_register(1, Some(12))
        .at(13, Some(14))
        .commit();
    let h = b.build();
    assert_violated(&h, SatModel::Serializable, "lost-update");
    assert_violated(&h, SatModel::SnapshotIsolation, "lost-update");
}

#[test]
fn zoo_long_fork_is_the_cycle_engines_completeness_gap() {
    // Two readers observe two independent writes in opposite orders:
    // UNSAT under SI (no pair of snapshots explains it), but invisible
    // to the cycle engine's SI obligations — the documented gap the SAT
    // engine closes, and exactly why the cross-check invariants are
    // one-directional.
    let mut b = HistoryBuilder::new();
    b.txn(0).write(1, 10).at(0, Some(1)).commit();
    b.txn(1).write(2, 20).at(2, Some(3)).commit();
    b.txn(2)
        .read_register(1, Some(10))
        .read_register(2, None)
        .at(4, Some(5))
        .commit();
    b.txn(3)
        .read_register(1, None)
        .read_register(2, Some(20))
        .at(6, Some(7))
        .commit();
    let h = b.build();
    assert!(
        cycle_report(&h, ConsistencyModel::SnapshotIsolation).ok(),
        "cycle engine is expected to be blind to the long fork"
    );
    assert_violated(&h, SatModel::SnapshotIsolation, "long-fork");
    assert_violated(&h, SatModel::Serializable, "long-fork");
}
