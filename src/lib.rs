//! # elle
//!
//! Facade crate for the Elle reproduction workspace
//! (Kingsbury & Alvaro, *Elle: Inferring Isolation Anomalies from
//! Experimental Observations*, VLDB 2020).
//!
//! Re-exports the member crates under stable module names:
//!
//! * [`history`] — Jepsen-style operation histories,
//! * [`graph`] — SCC / cycle-search substrate,
//! * [`core`] — the checker itself,
//! * [`dbsim`] — the MVCC database simulator used for evaluation,
//! * [`gen`] — workload generators,
//! * [`knossos`] — the baseline strict-serializability checker,
//! * [`sat`] — the SAT-backed complete cross-checker,
//! * [`stream`] — the incremental epoch-based checker for live histories,
//! * [`serve`] — the fault-isolated multi-tenant checking service.
//!
//! ```
//! use elle::prelude::*;
//!
//! // Record what clients observed…
//! let mut b = HistoryBuilder::new();
//! b.txn(0).append(1, 1).commit();
//! b.txn(1).read_list(1, [1]).commit();
//! let history = b.build();
//!
//! // …and check it.
//! let report = Checker::new(CheckOptions::strict_serializable()).check(&history);
//! assert!(report.anomalies.is_empty());
//! ```

pub use elle_core as core;
pub use elle_dbsim as dbsim;
pub use elle_gen as gen;
pub use elle_graph as graph;
pub use elle_history as history;
pub use elle_knossos as knossos;
pub use elle_sat as sat;
pub use elle_serve as serve;
pub use elle_stream as stream;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use elle_core::{
        Anomaly, AnomalyType, CheckOptions, Checker, ConsistencyModel, RegisterOptions, Report,
    };
    pub use elle_dbsim::{Bug, DbConfig, FaultPlan, IsolationLevel, ObjectKind, SimDb};
    pub use elle_gen::{run_workload, GenParams, Workload};
    pub use elle_history::{
        Elem, EventKind, EventLog, History, HistoryBuilder, Key, Mop, ProcessId, ReadValue,
        Transaction, TxnId, TxnStatus,
    };
    pub use elle_knossos::{KnossosOptions, KnossosOutcome, KnossosResult};
    pub use elle_sat::{SatModel, SatOptions, SatReport, SatVerdict};
}
