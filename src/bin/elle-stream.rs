//! Streaming command-line checker: ingest an NDJSON event stream (file
//! or stdin, optionally tailed as it grows), seal epochs on txn-count /
//! event-count / wall-clock watermarks, and emit one verdict per epoch
//! — each byte-identical to what `elle-check` would report on the
//! prefix ingested so far.
//!
//! ```sh
//! elle-gen … | elle-stream - --epoch-txns 1000 --json
//! elle-stream events.ndjson --model snapshot-isolation --process --realtime
//! elle-stream --gen 5000                # live simulated workload (demo)
//! elle-stream events.ndjson --follow --epoch-ms 500 --max-epoch-ms 2000
//! elle-stream damaged.ndjson --quarantine  # salvage what can be salvaged
//! ```
//!
//! Exit status: 0 when the final epoch satisfies the expected model,
//! 1 when violated, 2 on usage or input errors, 3 when the final epoch
//! was poisoned by an internal checker error.

use elle::history::{IngestCause, IngestError, RecoveryPolicy, SourcePos};
use elle::prelude::*;
use elle::stream::{EpochPolicy, EpochReport, StreamChecker, WindowPolicy};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Deterministic backoff jitter (SplitMix64 finalizer): no RNG state,
/// just a hash of the attempt counter.
fn jitter_ms(attempt: u32, cap: u64) -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempt) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % cap.max(1)
}

fn parse_model(s: &str) -> Option<ConsistencyModel> {
    ConsistencyModel::ALL.into_iter().find(|m| m.name() == s)
}

fn usage_text() -> String {
    format!(
        "usage: elle-stream [<events.ndjson> | -] [options]\n\
         \n\
         Ingest an NDJSON event stream (one invoke/ok/fail/info event per line),\n\
         sealing an epoch — and printing a full-prefix verdict — at each watermark.\n\
         \n\
         options:\n\
         --epoch-txns <n>   seal every n transactions (default 1000)\n\
         --epoch-events <n> seal every n events\n\
         --epoch-ms <ms>    also seal when this much wall time has passed\n\
         --max-epoch-ms <ms>  force a seal when an epoch stays open this long,\n\
         \u{20}                   even mid-watermark (a stalled producer cannot\n\
         \u{20}                   leave buffered events unreported)\n\
         --follow           keep reading as the file grows (tail -f)\n\
         --retries <n>      bounded retries (exponential backoff + jitter) on\n\
         \u{20}                  read errors in --follow mode (default 5)\n\
         --max-buffered-bytes <n>  abandon any single line larger than this\n\
         --quarantine       salvage damaged input: skip undecodable or misordered\n\
         \u{20}                  lines, adopt orphan completions, abandon overlapping\n\
         \u{20}                  invocations (one stderr diagnostic each)\n\
         --gen <n>          check a generated n-txn live workload instead of a file\n\
         --model <name>     expected model (default strict-serializable):\n\
         {}\n\
         --process          derive session-order edges\n\
         --realtime         derive real-time edges\n\
         --timestamps       derive start-ordered (database timestamp) edges\n\
         --linearizable-keys  assume per-key linearizability (registers)\n\
         --sequential-keys    assume per-key sequential consistency\n\
         --max-cycles <n>   cap reported cycles per anomaly type\n\
         --window-txns <n>  bounded memory: retire provably cycle-safe\n\
         \u{20}                  transactions beyond the most recent n\n\
         --window-bytes <n> bounded memory: retire down toward an n-byte\n\
         \u{20}                  resident budget (checker state, not input)\n\
         --json             one JSON object per epoch on stdout\n\
         --timing           per-epoch stage breakdown on stderr\n\
         \n\
         exit status:\n\
         0  the final epoch satisfies the expected model\n\
         1  the expected model is violated\n\
         2  usage or input error (strict-mode ingest failures included)\n\
         3  the final epoch was poisoned by an internal checker error",
        ConsistencyModel::ALL
            .map(|m| format!("                   {}", m.name()))
            .join("\n")
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

fn emit(epoch: &EpochReport, as_json: bool, timing: bool) {
    if as_json {
        // One self-contained JSON line per epoch; `report` is the full
        // batch-identical report object. A poisoned epoch's verdict is
        // indeterminate: `ok` becomes null and `poisoned` carries the
        // panic payload (the field is absent on healthy epochs, keeping
        // the default output byte-stable).
        let ok = match &epoch.poisoned {
            None => epoch.report.ok().to_string(),
            Some(_) => "null".to_string(),
        };
        let mut poisoned = match &epoch.poisoned {
            None => String::new(),
            Some(m) => format!(
                ",\"poisoned\":{}",
                serde_json::to_string(m).expect("string serializes")
            ),
        };
        // Degradation gauges, only when nonzero: healthy streams keep
        // byte-stable envelopes, degraded ones say so in the verdict
        // itself instead of only under --timing.
        if epoch.frontier.quarantined_events > 0 {
            poisoned.push_str(&format!(
                ",\"quarantined\":{}",
                epoch.frontier.quarantined_events
            ));
        }
        if epoch.timings.forced_seals > 0 {
            poisoned.push_str(&format!(",\"forced_seals\":{}", epoch.timings.forced_seals));
        }
        // Window semantics, only when a retirement policy is active:
        // unbounded runs keep byte-identical envelopes.
        if let Some(w) = &epoch.window {
            poisoned.push_str(&format!(
                ",\"window\":{{\"retired_txns\":{},\"retained_txns\":{},\"resident_bytes\":{},\"exact\":{}}}",
                w.retired_txns, w.retained_txns, w.resident_bytes, w.exact,
            ));
        }
        println!(
            "{{\"epoch\":{},\"txns\":{},\"events\":{},\"ok\":{ok},\"rebuilt\":{},\"open_txns\":{}{poisoned},\"report\":{}}}",
            epoch.epoch,
            epoch.txns,
            epoch.events,
            epoch.rebuilt,
            epoch.frontier.open_txns,
            serde_json::to_string(&epoch.report).expect("report serializes"),
        );
    } else {
        let r = &epoch.report;
        if let Some(msg) = &epoch.poisoned {
            println!(
                "epoch {:>4}: {:>7} txns ({:>5} new events), POISONED — {msg}",
                epoch.epoch, epoch.txns, epoch.events,
            );
        } else {
            println!(
                "epoch {:>4}: {:>7} txns ({:>5} new events), {} anomalies, {} — {}",
                epoch.epoch,
                epoch.txns,
                epoch.events,
                r.anomalies.len(),
                if r.ok() { "ok" } else { "VIOLATED" },
                if epoch.rebuilt {
                    "rebuilt"
                } else {
                    "incremental"
                },
            );
        }
        for (t, n) in &r.anomaly_counts {
            println!("    {t}: {n}");
        }
    }
    if timing {
        eprintln!("epoch {} timing:", epoch.epoch);
        eprint!("{}", epoch.timings.render());
    }
}

/// Everything `run_reader` needs beyond the reader itself.
struct ReaderConfig {
    follow: bool,
    policy: EpochPolicy,
    opts: CheckOptions,
    as_json: bool,
    timing: bool,
    recovery: RecoveryPolicy,
    /// Force a seal when an epoch has stayed open this long.
    max_epoch: Option<Duration>,
    /// Abandon any single line that grows past this many bytes.
    max_line_bytes: Option<usize>,
    /// Bounded retries on read errors in follow mode.
    retries: u32,
    /// Test hook: panic inside the seal of this epoch ordinal.
    inject_seal_panic: Option<usize>,
    /// Bounded-memory retirement policy.
    window: WindowPolicy,
}

/// Seal (guarded), surface the CLI-level gauges on the report, emit.
fn seal_and_emit(
    checker: &mut StreamChecker,
    cfg: &ReaderConfig,
    forced_seals: usize,
    cli_quarantined: usize,
) -> EpochReport {
    let mut epoch = checker.seal_epoch_guarded();
    epoch.timings.forced_seals = forced_seals;
    epoch.timings.quarantined_events += cli_quarantined;
    epoch.frontier.quarantined_events += cli_quarantined;
    emit(&epoch, cfg.as_json, cfg.timing);
    epoch
}

fn run_reader(reader: &mut dyn BufRead, cfg: &ReaderConfig) -> Result<EpochReport, String> {
    let mut checker = StreamChecker::with_window(cfg.opts, cfg.window);
    if let Some(e) = cfg.inject_seal_panic {
        checker.inject_seal_panic(e);
    }
    let quarantine = matches!(cfg.recovery, RecoveryPolicy::Quarantine);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut consumed = 0usize; // bytes read so far
    let mut line_start = 0usize; // byte offset where the current line began
    let mut discarding = false; // inside an over-budget line, skipping to '\n'
    let mut txns_since = 0usize;
    let mut events_since = 0usize;
    let mut since_seal = Instant::now();
    let mut attempts = 0u32;
    let mut forced_seals = 0usize;
    let mut cli_quarantined = 0usize;
    loop {
        // `read_line` appends, so a partially-written line left over
        // from the previous pass (follow mode) is completed in place.
        if line.is_empty() {
            line_start = consumed;
        }
        let n = match reader.read_line(&mut line) {
            Ok(n) => {
                attempts = 0;
                n
            }
            Err(e) if cfg.follow && attempts < cfg.retries => {
                // Transient source errors (rotating file, flaky mount):
                // bounded exponential backoff with deterministic jitter.
                attempts += 1;
                let base = 50u64 << attempts.min(6);
                let wait = base + jitter_ms(attempts, base / 2);
                eprintln!(
                    "read error: {e}; retry {attempts}/{} in {wait} ms",
                    cfg.retries
                );
                std::thread::sleep(Duration::from_millis(wait));
                continue;
            }
            Err(e) => return Err(format!("read error: {e}")),
        };
        if n == 0 {
            if cfg.follow {
                let due = cfg.policy.should_seal(txns_since, events_since, since_seal);
                let forced = cfg.max_epoch.is_some_and(|m| since_seal.elapsed() >= m);
                if (due || forced) && (txns_since > 0 || events_since > 0) {
                    if forced && !due {
                        forced_seals += 1;
                    }
                    seal_and_emit(&mut checker, cfg, forced_seals, cli_quarantined);
                    txns_since = 0;
                    events_since = 0;
                    since_seal = Instant::now();
                }
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            break;
        }
        consumed += n;
        if discarding {
            // Still inside a line already reported as over budget.
            let done = line.ends_with('\n');
            line.clear();
            if done {
                discarding = false;
                lineno += 1;
            }
            continue;
        }
        if let Some(cap) = cfg.max_line_bytes {
            if line.len() > cap {
                let err = IngestError {
                    pos: SourcePos {
                        line: lineno + 1,
                        byte: line_start,
                    },
                    cause: IngestCause::Oversized { limit: cap },
                };
                if !quarantine {
                    return Err(err.to_string());
                }
                eprintln!("quarantined: {err} — line skipped");
                cli_quarantined += 1;
                if line.ends_with('\n') {
                    lineno += 1;
                } else {
                    discarding = true;
                }
                line.clear();
                continue;
            }
        }
        if cfg.follow && !line.ends_with('\n') {
            // A producer is mid-write on this line; wait for the rest
            // rather than mis-parsing a truncated event.
            continue;
        }
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let pos = SourcePos {
                line: lineno,
                byte: line_start,
            };
            match serde_json::from_str::<elle::history::Event>(trimmed) {
                Err(e) => {
                    let err = IngestError {
                        pos,
                        cause: IngestCause::Decode {
                            message: e.to_string(),
                        },
                    };
                    if !quarantine {
                        return Err(err.to_string());
                    }
                    eprintln!("quarantined: {err} — line skipped");
                    cli_quarantined += 1;
                }
                Ok(ev) => {
                    let is_invoke = ev.kind == EventKind::Invoke;
                    match checker.ingest_event_with(&ev, cfg.recovery) {
                        Err(e) => return Err(IngestError::from_pairing(pos, e).to_string()),
                        Ok(recovered) => {
                            if let Some(d) = recovered.diagnostic(pos) {
                                eprintln!("quarantined: {d}");
                            }
                        }
                    }
                    events_since += 1;
                    if is_invoke {
                        txns_since += 1;
                    }
                }
            }
            let due = cfg.policy.should_seal(txns_since, events_since, since_seal);
            let forced =
                cfg.max_epoch.is_some_and(|m| since_seal.elapsed() >= m) && events_since > 0;
            if due || forced {
                if forced && !due {
                    forced_seals += 1;
                }
                seal_and_emit(&mut checker, cfg, forced_seals, cli_quarantined);
                txns_since = 0;
                events_since = 0;
                since_seal = Instant::now();
            }
        }
        line.clear();
    }
    // Final seal at end of stream.
    Ok(seal_and_emit(
        &mut checker,
        cfg,
        forced_seals,
        cli_quarantined,
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut path: Option<String> = None;
    let mut opts = CheckOptions::strict_serializable()
        .with_process_edges(false)
        .with_realtime_edges(false);
    let mut registers = RegisterOptions::default();
    let mut as_json = false;
    let mut timing = false;
    let mut follow = false;
    let mut quarantine = false;
    let mut gen_txns: Option<usize> = None;
    let mut epoch_txns: Option<usize> = None;
    let mut epoch_events: Option<usize> = None;
    let mut epoch_ms: Option<u64> = None;
    let mut max_epoch_ms: Option<u64> = None;
    let mut max_buffered_bytes: Option<usize> = None;
    let mut retries = 5u32;
    let mut inject_seal_panic: Option<usize> = None;
    let mut window = WindowPolicy::Unbounded;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                let Some(name) = it.next() else {
                    return usage();
                };
                let Some(m) = parse_model(name) else {
                    eprintln!("unknown model {name:?}");
                    return usage();
                };
                opts.expected = m;
            }
            "--process" => opts = opts.with_process_edges(true),
            "--realtime" => opts = opts.with_realtime_edges(true),
            "--timestamps" => opts = opts.with_timestamp_edges(true),
            "--linearizable-keys" => registers.linearizable_keys = true,
            "--sequential-keys" => registers.sequential_keys = true,
            "--max-cycles" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts = opts.with_max_cycles(n);
            }
            "--epoch-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_txns = Some(n);
            }
            "--epoch-events" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_events = Some(n);
            }
            "--epoch-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_ms = Some(n);
            }
            "--gen" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                gen_txns = Some(n);
            }
            "--max-epoch-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_epoch_ms = Some(n);
            }
            "--max-buffered-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_buffered_bytes = Some(n);
            }
            "--retries" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                retries = n;
            }
            // Undocumented test hook: panic inside the seal of epoch N,
            // to exercise poisoned-epoch isolation end to end.
            "--inject-seal-panic" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                inject_seal_panic = Some(n);
            }
            "--window-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                window = WindowPolicy::TxnCount(n);
            }
            "--window-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                window = WindowPolicy::Bytes(n);
            }
            "--follow" => follow = true,
            "--quarantine" => quarantine = true,
            "--json" => as_json = true,
            "--timing" => timing = true,
            "--help" | "-h" => return help(),
            other if path.is_none() && (other == "-" || !other.starts_with('-')) => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unrecognized argument {other:?}");
                return usage();
            }
        }
    }
    opts = opts.with_registers(registers);

    // Watermarks compose with *or*; default to a 1000-txn epoch when
    // none was given.
    let mut policy = EpochPolicy {
        txns: epoch_txns.map(|n| n.max(1)),
        events: epoch_events.map(|n| n.max(1)),
        wall: epoch_ms.map(Duration::from_millis),
    };
    if policy.txns.is_none() && policy.events.is_none() && policy.wall.is_none() {
        policy = EpochPolicy::every_txns(1000);
    }

    if let Some(n) = gen_txns {
        // Live mode: generate a workload against the simulator and
        // check it as it runs.
        let params = GenParams::paper_perf(n).with_seed(0xE11E);
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(0xE11E);
        let last = elle::stream::run_live_windowed(params, db, policy, opts, window, |epoch| {
            emit(epoch, as_json, timing)
        });
        return verdict_exit(&last);
    }

    let Some(path) = path else { return usage() };
    let mut reader: Box<dyn BufRead> = if path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        match std::fs::File::open(&path) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let cfg = ReaderConfig {
        follow,
        policy,
        opts,
        as_json,
        timing,
        recovery: if quarantine {
            RecoveryPolicy::Quarantine
        } else {
            RecoveryPolicy::Strict
        },
        max_epoch: max_epoch_ms.map(Duration::from_millis),
        max_line_bytes: max_buffered_bytes,
        retries,
        inject_seal_panic,
        window,
    };
    match run_reader(&mut *reader, &cfg) {
        Ok(last) => verdict_exit(&last),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Map the final epoch to the process exit status: a poisoned final
/// epoch means the checker — not the database — failed, exit 3.
fn verdict_exit(last: &EpochReport) -> ExitCode {
    if last.poisoned.is_some() {
        ExitCode::from(3)
    } else if last.report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
