//! Streaming command-line checker: ingest an NDJSON event stream (file
//! or stdin, optionally tailed as it grows), seal epochs on txn-count /
//! event-count / wall-clock watermarks, and emit one verdict per epoch
//! — each byte-identical to what `elle-check` would report on the
//! prefix ingested so far.
//!
//! ```sh
//! elle-gen … | elle-stream - --epoch-txns 1000 --json
//! elle-stream events.ndjson --model snapshot-isolation --process --realtime
//! elle-stream --gen 5000                # live simulated workload (demo)
//! elle-stream events.ndjson --follow --epoch-ms 500
//! ```
//!
//! Exit status: 0 when the final epoch satisfies the expected model,
//! 1 when violated, 2 on usage or input errors.

use elle::prelude::*;
use elle::stream::{EpochPolicy, EpochReport, StreamChecker};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn parse_model(s: &str) -> Option<ConsistencyModel> {
    ConsistencyModel::ALL.into_iter().find(|m| m.name() == s)
}

fn usage_text() -> String {
    format!(
        "usage: elle-stream [<events.ndjson> | -] [options]\n\
         \n\
         Ingest an NDJSON event stream (one invoke/ok/fail/info event per line),\n\
         sealing an epoch — and printing a full-prefix verdict — at each watermark.\n\
         \n\
         options:\n\
         --epoch-txns <n>   seal every n transactions (default 1000)\n\
         --epoch-events <n> seal every n events\n\
         --epoch-ms <ms>    also seal when this much wall time has passed\n\
         --follow           keep reading as the file grows (tail -f)\n\
         --gen <n>          check a generated n-txn live workload instead of a file\n\
         --model <name>     expected model (default strict-serializable):\n\
         {}\n\
         --process          derive session-order edges\n\
         --realtime         derive real-time edges\n\
         --timestamps       derive start-ordered (database timestamp) edges\n\
         --linearizable-keys  assume per-key linearizability (registers)\n\
         --sequential-keys    assume per-key sequential consistency\n\
         --max-cycles <n>   cap reported cycles per anomaly type\n\
         --json             one JSON object per epoch on stdout\n\
         --timing           per-epoch stage breakdown on stderr",
        ConsistencyModel::ALL
            .map(|m| format!("                   {}", m.name()))
            .join("\n")
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

fn emit(epoch: &EpochReport, as_json: bool, timing: bool) {
    if as_json {
        // One self-contained JSON line per epoch; `report` is the full
        // batch-identical report object.
        println!(
            "{{\"epoch\":{},\"txns\":{},\"events\":{},\"ok\":{},\"rebuilt\":{},\"open_txns\":{},\"report\":{}}}",
            epoch.epoch,
            epoch.txns,
            epoch.events,
            epoch.report.ok(),
            epoch.rebuilt,
            epoch.frontier.open_txns,
            serde_json::to_string(&epoch.report).expect("report serializes"),
        );
    } else {
        let r = &epoch.report;
        println!(
            "epoch {:>4}: {:>7} txns ({:>5} new events), {} anomalies, {} — {}",
            epoch.epoch,
            epoch.txns,
            epoch.events,
            r.anomalies.len(),
            if r.ok() { "ok" } else { "VIOLATED" },
            if epoch.rebuilt {
                "rebuilt"
            } else {
                "incremental"
            },
        );
        for (t, n) in &r.anomaly_counts {
            println!("    {t}: {n}");
        }
    }
    if timing {
        eprintln!("epoch {} timing:", epoch.epoch);
        eprint!("{}", epoch.timings.render());
    }
}

#[allow(clippy::too_many_arguments)]
fn run_reader(
    reader: &mut dyn BufRead,
    follow: bool,
    policy: EpochPolicy,
    opts: CheckOptions,
    as_json: bool,
    timing: bool,
) -> Result<EpochReport, String> {
    let mut checker = StreamChecker::new(opts);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut txns_since = 0usize;
    let mut events_since = 0usize;
    let mut since_seal = Instant::now();
    loop {
        // `read_line` appends, so a partially-written line left over
        // from the previous pass (follow mode) is completed in place.
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            if follow {
                if policy.should_seal(txns_since, events_since, since_seal)
                    && (txns_since > 0 || events_since > 0)
                {
                    emit(&checker.seal_epoch(), as_json, timing);
                    txns_since = 0;
                    events_since = 0;
                    since_seal = Instant::now();
                }
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            break;
        }
        if follow && !line.ends_with('\n') {
            // A producer is mid-write on this line; wait for the rest
            // rather than mis-parsing a truncated event.
            continue;
        }
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let ev: elle::history::Event =
                serde_json::from_str(trimmed).map_err(|e| format!("line {lineno}: {e}"))?;
            let is_invoke = ev.kind == EventKind::Invoke;
            checker
                .ingest_event(&ev)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            events_since += 1;
            if is_invoke {
                txns_since += 1;
            }
            if policy.should_seal(txns_since, events_since, since_seal) {
                emit(&checker.seal_epoch(), as_json, timing);
                txns_since = 0;
                events_since = 0;
                since_seal = Instant::now();
            }
        }
        line.clear();
    }
    // Final seal at end of stream.
    let last = checker.seal_epoch();
    emit(&last, as_json, timing);
    Ok(last)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut path: Option<String> = None;
    let mut opts = CheckOptions::strict_serializable()
        .with_process_edges(false)
        .with_realtime_edges(false);
    let mut registers = RegisterOptions::default();
    let mut as_json = false;
    let mut timing = false;
    let mut follow = false;
    let mut gen_txns: Option<usize> = None;
    let mut epoch_txns: Option<usize> = None;
    let mut epoch_events: Option<usize> = None;
    let mut epoch_ms: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                let Some(name) = it.next() else {
                    return usage();
                };
                let Some(m) = parse_model(name) else {
                    eprintln!("unknown model {name:?}");
                    return usage();
                };
                opts.expected = m;
            }
            "--process" => opts = opts.with_process_edges(true),
            "--realtime" => opts = opts.with_realtime_edges(true),
            "--timestamps" => opts = opts.with_timestamp_edges(true),
            "--linearizable-keys" => registers.linearizable_keys = true,
            "--sequential-keys" => registers.sequential_keys = true,
            "--max-cycles" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts = opts.with_max_cycles(n);
            }
            "--epoch-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_txns = Some(n);
            }
            "--epoch-events" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_events = Some(n);
            }
            "--epoch-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                epoch_ms = Some(n);
            }
            "--gen" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                gen_txns = Some(n);
            }
            "--follow" => follow = true,
            "--json" => as_json = true,
            "--timing" => timing = true,
            "--help" | "-h" => return help(),
            other if path.is_none() && (other == "-" || !other.starts_with('-')) => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unrecognized argument {other:?}");
                return usage();
            }
        }
    }
    opts = opts.with_registers(registers);

    // Watermarks compose with *or*; default to a 1000-txn epoch when
    // none was given.
    let mut policy = EpochPolicy {
        txns: epoch_txns.map(|n| n.max(1)),
        events: epoch_events.map(|n| n.max(1)),
        wall: epoch_ms.map(Duration::from_millis),
    };
    if policy.txns.is_none() && policy.events.is_none() && policy.wall.is_none() {
        policy = EpochPolicy::every_txns(1000);
    }

    if let Some(n) = gen_txns {
        // Live mode: generate a workload against the simulator and
        // check it as it runs.
        let params = GenParams::paper_perf(n).with_seed(0xE11E);
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(0xE11E);
        let last = elle::stream::run_live(params, db, policy, opts, |epoch| {
            emit(epoch, as_json, timing)
        });
        return if last.report.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let Some(path) = path else { return usage() };
    let mut reader: Box<dyn BufRead> = if path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        match std::fs::File::open(&path) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    match run_reader(&mut *reader, follow, policy, opts, as_json, timing) {
        Ok(last) => {
            if last.report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
