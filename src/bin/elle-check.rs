//! Command-line checker: read a JSON history (as produced by
//! `elle_history::history_to_json` or any compatible harness) or an
//! NDJSON event stream (`*.ndjson`), run Elle, and print the report.
//!
//! ```sh
//! elle-check history.json --model snapshot-isolation --realtime --process
//! elle-check events.ndjson --quarantine     # salvage a damaged stream
//! elle-check history.json --json            # machine-readable report
//! elle-check --demo                         # check a built-in example
//! ```
//!
//! Exit status: 0 when the expected model holds, 1 when violated, 2 on
//! usage or input errors, 3 on an internal checker error.

use elle::history::{NdjsonIngestor, RecoveryPolicy};
use elle::prelude::*;
use std::process::ExitCode;

fn parse_model(s: &str) -> Option<ConsistencyModel> {
    ConsistencyModel::ALL.into_iter().find(|m| m.name() == s)
}

fn usage_text() -> String {
    format!(
        "usage: elle-check <history.json | events.ndjson> [options]\n\
         \n\
         A *.ndjson input is parsed as an event stream (one invoke/ok/fail/info\n\
         event per line) and paired; anything else as a JSON history.\n\
         \n\
         options:\n\
         --model <name>   expected model (default strict-serializable):\n\
         {}\n\
         --process        derive session-order edges\n\
         --realtime       derive real-time edges\n\
         --timestamps     derive start-ordered (database timestamp) edges\n\
         --linearizable-keys  assume per-key linearizability (registers)\n\
         --sequential-keys    assume per-key sequential consistency\n\
         --max-cycles <n> cap reported cycles per anomaly type\n\
         --quarantine     salvage damaged .ndjson input: skip undecodable or\n\
         \u{20}                misordered lines, adopt orphan completions, abandon\n\
         \u{20}                overlapping invocations (one stderr diagnostic each)\n\
         --json           print the full report as JSON\n\
         --timing         print a per-stage wall-clock breakdown on stderr\n\
         --demo           check a built-in anomalous example\n\
         \n\
         exit status:\n\
         0  the expected model holds\n\
         1  the expected model is violated\n\
         2  usage or input error (strict-mode ingest failures included)\n\
         3  internal checker error (a bug in elle, not in your database)",
        ConsistencyModel::ALL
            .map(|m| format!("                   {}", m.name()))
            .join("\n")
    )
}

/// A usage *error*: help on stderr, exit 2.
fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

/// An explicit help request: help on stdout, exit 0.
fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

fn demo_history() -> History {
    // The paper's §7.1 TiDB trio.
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(36, 5)
        .append(34, 4)
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    b.build()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut path: Option<String> = None;
    let mut opts = CheckOptions::strict_serializable()
        .with_process_edges(false)
        .with_realtime_edges(false);
    let mut registers = RegisterOptions::default();
    let mut as_json = false;
    let mut timing = false;
    let mut demo = false;
    let mut quarantine = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                let Some(name) = it.next() else {
                    return usage();
                };
                let Some(m) = parse_model(name) else {
                    eprintln!("unknown model {name:?}");
                    return usage();
                };
                opts.expected = m;
            }
            "--process" => opts = opts.with_process_edges(true),
            "--realtime" => opts = opts.with_realtime_edges(true),
            "--timestamps" => opts = opts.with_timestamp_edges(true),
            "--linearizable-keys" => registers.linearizable_keys = true,
            "--sequential-keys" => registers.sequential_keys = true,
            "--max-cycles" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts = opts.with_max_cycles(n);
            }
            "--json" => as_json = true,
            "--timing" => timing = true,
            "--demo" => demo = true,
            "--quarantine" => quarantine = true,
            "--help" | "-h" => return help(),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unrecognized argument {other:?}");
                return usage();
            }
        }
    }
    opts = opts.with_registers(registers);

    let parse_start = std::time::Instant::now();
    let mut quarantined = 0usize;
    let history = if demo {
        demo_history()
    } else {
        let Some(path) = path else { return usage() };
        let raw = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if path.ends_with(".ndjson") {
            let policy = if quarantine {
                RecoveryPolicy::Quarantine
            } else {
                RecoveryPolicy::Strict
            };
            let mut ingestor = NdjsonIngestor::new(policy);
            if let Err(e) = ingestor.feed_str(&raw) {
                eprintln!("cannot ingest {path}: {e}");
                return ExitCode::from(2);
            }
            let (h, diags) = ingestor.finish();
            for d in &diags {
                eprintln!("quarantined: {d}");
            }
            quarantined = diags.len();
            h
        } else {
            match elle::history::history_from_json(&raw) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let parse_secs = parse_start.elapsed().as_secs_f64();

    let checker = Checker::new(opts);
    let report = if timing {
        let guarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checker.check_timed(&history)
        }));
        let (report, mut stages) = match guarded {
            Ok(out) => out,
            Err(p) => {
                eprintln!(
                    "internal checker error: {}",
                    elle::core::panic_message(p.as_ref())
                );
                return ExitCode::from(3);
            }
        };
        stages.quarantined_events = quarantined;
        eprintln!("timing (wall clock):");
        eprintln!("  {:<26}  {:>9.3} ms", "parse + pairing", parse_secs * 1e3);
        eprint!("{}", stages.render());
        report
    } else {
        match checker.try_check(&history) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(3);
            }
        }
    };
    if as_json {
        // The report object itself is checker output (kept byte-stable);
        // ingest-level degradation rides alongside as a top-level gauge,
        // present only when something was actually quarantined.
        let mut v = serde::Serialize::serialize(&report);
        if quarantined > 0 {
            if let serde::Value::Map(entries) = &mut v {
                entries.push((
                    "quarantined".to_string(),
                    serde::Value::UInt(quarantined as u64),
                ));
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("report serializes")
        );
    } else {
        print!("{}", report.summary());
        for w in &report.warnings {
            println!("warning: {w}");
        }
        for a in report.anomalies.iter().take(opts.max_cycles_per_type) {
            println!("\n{a}");
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
