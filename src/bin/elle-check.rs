//! Command-line checker: read a JSON history (as produced by
//! `elle_history::history_to_json` or any compatible harness) or an
//! NDJSON event stream (`*.ndjson`), run Elle, and print the report.
//!
//! ```sh
//! elle-check history.json --model snapshot-isolation --realtime --process
//! elle-check events.ndjson --quarantine     # salvage a damaged stream
//! elle-check history.json --json            # machine-readable report
//! elle-check --demo                         # check a built-in example
//! ```
//!
//! Exit status: 0 when the expected model holds, 1 when violated, 2 on
//! usage or input errors, 3 on an internal checker error, an exhausted
//! engine budget (verdict unknown), or an `--engine both` disagreement.

use elle::history::{NdjsonIngestor, RecoveryPolicy};
use elle::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

fn parse_model(s: &str) -> Option<ConsistencyModel> {
    ConsistencyModel::ALL.into_iter().find(|m| m.name() == s)
}

/// Which verdict engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Elle's sound cycle search over the inferred dependency graph.
    Cycle,
    /// The complete SAT cross-checker (`elle::sat`).
    Sat,
    /// The WGL-style DFS linearization search (`elle::knossos`).
    Dfs,
    /// Cycle and SAT, diffed; disagreement is exit 3.
    Both,
}

fn parse_engine(s: &str) -> Option<Engine> {
    match s {
        "cycle" => Some(Engine::Cycle),
        "sat" => Some(Engine::Sat),
        "dfs" => Some(Engine::Dfs),
        "both" => Some(Engine::Both),
        _ => None,
    }
}

fn usage_text() -> String {
    format!(
        "usage: elle-check <history.json | events.ndjson> [options]\n\
         \n\
         A *.ndjson input is parsed as an event stream (one invoke/ok/fail/info\n\
         event per line) and paired; anything else as a JSON history.\n\
         \n\
         options:\n\
         --model <name>   expected model (default strict-serializable):\n\
         {}\n\
         --engine <name>  verdict engine (default cycle):\n\
         \u{20}                  cycle  Elle's sound cycle search over the inferred IDSG\n\
         \u{20}                  sat    complete SAT check; requires --model serializable\n\
         \u{20}                         or snapshot-isolation, decodes a witness order or\n\
         \u{20}                         a minimal counterexample\n\
         \u{20}                  dfs    WGL-style DFS linearization search; only for the\n\
         \u{20}                         default strict-serializable model on list/register\n\
         \u{20}                         histories\n\
         \u{20}                  both   run cycle and sat on the same history and diff\n\
         \u{20}                         the verdicts (disagreement is exit 3)\n\
         --time-budget-ms <n>  dfs: wall-clock budget (default 100000)\n\
         --max-states <n>      dfs: explored-state cap\n\
         --process        derive session-order edges\n\
         --realtime       derive real-time edges\n\
         --timestamps     derive start-ordered (database timestamp) edges\n\
         --linearizable-keys  assume per-key linearizability (registers)\n\
         --sequential-keys    assume per-key sequential consistency\n\
         --max-cycles <n> cap reported cycles per anomaly type\n\
         --quarantine     salvage damaged .ndjson input: skip undecodable or\n\
         \u{20}                misordered lines, adopt orphan completions, abandon\n\
         \u{20}                overlapping invocations (one stderr diagnostic each)\n\
         --json           print the full report as JSON\n\
         --timing         print a per-stage wall-clock breakdown on stderr\n\
         --demo           check a built-in anomalous example\n\
         \n\
         exit status:\n\
         0  the expected model holds\n\
         1  the expected model is violated\n\
         2  usage or input error (strict-mode ingest failures included,\n\
         \u{20}   histories the chosen engine cannot model)\n\
         3  internal checker error, an engine budget exhausted (verdict\n\
         \u{20}   unknown), or an --engine both disagreement",
        ConsistencyModel::ALL
            .map(|m| format!("                   {}", m.name()))
            .join("\n")
    )
}

/// A usage *error*: help on stderr, exit 2.
fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

/// An explicit help request: help on stdout, exit 0.
fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

fn demo_history() -> History {
    // The paper's §7.1 TiDB trio.
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(36, 5)
        .append(34, 4)
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    b.build()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut path: Option<String> = None;
    let mut opts = CheckOptions::strict_serializable()
        .with_process_edges(false)
        .with_realtime_edges(false);
    let mut registers = RegisterOptions::default();
    let mut as_json = false;
    let mut timing = false;
    let mut demo = false;
    let mut quarantine = false;
    let mut engine = Engine::Cycle;
    let mut time_budget_ms: u64 = 100_000;
    let mut max_states: Option<usize> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let Some(e) = it.next().and_then(|s| parse_engine(s)) else {
                    return usage();
                };
                engine = e;
            }
            "--time-budget-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                time_budget_ms = n;
            }
            "--max-states" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_states = Some(n);
            }
            "--model" => {
                let Some(name) = it.next() else {
                    return usage();
                };
                let Some(m) = parse_model(name) else {
                    eprintln!("unknown model {name:?}");
                    return usage();
                };
                opts.expected = m;
            }
            "--process" => opts = opts.with_process_edges(true),
            "--realtime" => opts = opts.with_realtime_edges(true),
            "--timestamps" => opts = opts.with_timestamp_edges(true),
            "--linearizable-keys" => registers.linearizable_keys = true,
            "--sequential-keys" => registers.sequential_keys = true,
            "--max-cycles" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts = opts.with_max_cycles(n);
            }
            "--json" => as_json = true,
            "--timing" => timing = true,
            "--demo" => demo = true,
            "--quarantine" => quarantine = true,
            "--help" | "-h" => return help(),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unrecognized argument {other:?}");
                return usage();
            }
        }
    }
    opts = opts.with_registers(registers);

    let parse_start = std::time::Instant::now();
    let mut quarantined = 0usize;
    let history = if demo {
        demo_history()
    } else {
        let Some(path) = path else { return usage() };
        let raw = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if path.ends_with(".ndjson") {
            let policy = if quarantine {
                RecoveryPolicy::Quarantine
            } else {
                RecoveryPolicy::Strict
            };
            let mut ingestor = NdjsonIngestor::new(policy);
            if let Err(e) = ingestor.feed_str(&raw) {
                eprintln!("cannot ingest {path}: {e}");
                return ExitCode::from(2);
            }
            let (h, diags) = ingestor.finish();
            for d in &diags {
                eprintln!("quarantined: {d}");
            }
            quarantined = diags.len();
            h
        } else {
            match elle::history::history_from_json(&raw) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let parse_secs = parse_start.elapsed().as_secs_f64();

    match engine {
        Engine::Cycle => {}
        Engine::Sat => return run_sat(&history, opts.expected, as_json, timing),
        Engine::Dfs => {
            return run_dfs(&history, opts.expected, time_budget_ms, max_states, as_json)
        }
        Engine::Both => return run_both(&history, opts, as_json, timing),
    }

    let checker = Checker::new(opts);
    let report = if timing {
        let guarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checker.check_timed(&history)
        }));
        let (report, mut stages) = match guarded {
            Ok(out) => out,
            Err(p) => {
                eprintln!(
                    "internal checker error: {}",
                    elle::core::panic_message(p.as_ref())
                );
                return ExitCode::from(3);
            }
        };
        stages.quarantined_events = quarantined;
        eprintln!("timing (wall clock):");
        eprintln!("  {:<26}  {:>9.3} ms", "parse + pairing", parse_secs * 1e3);
        eprint!("{}", stages.render());
        report
    } else {
        match checker.try_check(&history) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(3);
            }
        }
    };
    if as_json {
        // The report object itself is checker output (kept byte-stable);
        // ingest-level degradation rides alongside as a top-level gauge,
        // present only when something was actually quarantined.
        let mut v = serde::Serialize::serialize(&report);
        if quarantined > 0 {
            if let serde::Value::Map(entries) = &mut v {
                entries.push((
                    "quarantined".to_string(),
                    serde::Value::UInt(quarantined as u64),
                ));
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("report serializes")
        );
    } else {
        print!("{}", report.summary());
        for w in &report.warnings {
            println!("warning: {w}");
        }
        for a in report.anomalies.iter().take(opts.max_cycles_per_type) {
            println!("\n{a}");
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The SAT engine's model universe: the two isolation levels the
/// encoding covers.
fn sat_model_of(m: ConsistencyModel) -> Option<SatModel> {
    match m {
        ConsistencyModel::Serializable => Some(SatModel::Serializable),
        ConsistencyModel::SnapshotIsolation => Some(SatModel::SnapshotIsolation),
        _ => None,
    }
}

fn sat_verdict_word(v: &SatVerdict) -> &'static str {
    match v {
        SatVerdict::Satisfiable { .. } => "satisfiable",
        SatVerdict::Violated { .. } => "violated",
        SatVerdict::Unknown { .. } => "unknown",
        SatVerdict::Unsupported { .. } => "unsupported",
    }
}

fn sat_exit(v: &SatVerdict) -> ExitCode {
    match v {
        SatVerdict::Satisfiable { .. } => ExitCode::SUCCESS,
        SatVerdict::Violated { .. } => ExitCode::from(1),
        SatVerdict::Unsupported { .. } => ExitCode::from(2),
        SatVerdict::Unknown { .. } => ExitCode::from(3),
    }
}

/// The SAT report as JSON: an `engine` discriminator plus
/// verdict-specific fields (witness array, decoded order). Only the new
/// engines emit this shape — default cycle output stays byte-identical.
fn sat_json(model: SatModel, report: &SatReport) -> serde::Value {
    use serde::Value;
    let ids = |ts: &[TxnId]| Value::Array(ts.iter().map(|t| Value::UInt(t.0 as u64)).collect());
    let mut m: Vec<(String, Value)> = vec![
        ("engine".into(), Value::Str("sat".into())),
        ("model".into(), Value::Str(model.to_string())),
        (
            "verdict".into(),
            Value::Str(sat_verdict_word(&report.verdict).into()),
        ),
    ];
    match &report.verdict {
        SatVerdict::Satisfiable { order } => m.push(("order".into(), ids(order))),
        SatVerdict::Violated {
            witness,
            minimized,
            explanation,
        } => {
            m.push(("witness".into(), ids(witness)));
            m.push(("minimized".into(), Value::Bool(*minimized)));
            m.push(("explanation".into(), Value::Str(explanation.clone())));
        }
        SatVerdict::Unknown { reason } | SatVerdict::Unsupported { reason } => {
            m.push(("reason".into(), Value::Str(reason.clone())));
        }
    }
    let s = &report.stats;
    m.push((
        "stats".into(),
        Value::Map(vec![
            ("included".into(), Value::UInt(s.included as u64)),
            ("events".into(), Value::UInt(s.events as u64)),
            ("vars".into(), Value::UInt(s.vars as u64)),
            ("clauses".into(), Value::UInt(s.clauses as u64)),
            ("rounds".into(), Value::UInt(s.rounds as u64)),
            ("conflicts".into(), Value::UInt(s.conflicts)),
            ("decisions".into(), Value::UInt(s.decisions)),
            ("propagations".into(), Value::UInt(s.propagations)),
            (
                "minimize_solves".into(),
                Value::UInt(s.minimize_solves as u64),
            ),
            (
                "elapsed_ms".into(),
                Value::Float(s.elapsed.as_secs_f64() * 1e3),
            ),
        ]),
    ));
    Value::Map(m)
}

fn print_sat_human(model: SatModel, report: &SatReport) {
    match &report.verdict {
        SatVerdict::Satisfiable { order } => {
            println!("sat: {model} satisfiable");
            const SHOW: usize = 24;
            let shown: Vec<String> = order.iter().take(SHOW).map(|t| t.to_string()).collect();
            let more = order.len().saturating_sub(SHOW);
            if more > 0 {
                println!("  order: {} … (+{more} more)", shown.join(" < "));
            } else if !shown.is_empty() {
                println!("  order: {}", shown.join(" < "));
            }
        }
        SatVerdict::Violated {
            witness,
            minimized,
            explanation,
        } => {
            println!("sat: {model} violated");
            let w: Vec<String> = witness.iter().map(|t| t.to_string()).collect();
            println!(
                "  witness{}: {}",
                if *minimized { " (minimal)" } else { "" },
                w.join(", ")
            );
            println!("  {explanation}");
        }
        SatVerdict::Unknown { reason } => println!("sat: {model} unknown ({reason})"),
        SatVerdict::Unsupported { reason } => println!("sat: {model} unsupported ({reason})"),
    }
}

fn sat_timing_line(report: &SatReport) {
    let s = &report.stats;
    eprintln!(
        "sat: {} included txns, {} events, {} vars, {} clauses, {} rounds, \
         {} conflicts, {} minimize solves, {:.3} ms",
        s.included,
        s.events,
        s.vars,
        s.clauses,
        s.rounds,
        s.conflicts,
        s.minimize_solves,
        s.elapsed.as_secs_f64() * 1e3
    );
}

fn run_sat(history: &History, expected: ConsistencyModel, as_json: bool, timing: bool) -> ExitCode {
    let Some(model) = sat_model_of(expected) else {
        eprintln!(
            "--engine sat checks --model serializable or snapshot-isolation \
             (expected model is {expected})"
        );
        return ExitCode::from(2);
    };
    let report = elle::sat::check(history, model, &SatOptions::default());
    if timing {
        sat_timing_line(&report);
    }
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&sat_json(model, &report)).expect("report serializes")
        );
    } else {
        print_sat_human(model, &report);
    }
    sat_exit(&report.verdict)
}

fn run_dfs(
    history: &History,
    expected: ConsistencyModel,
    time_budget_ms: u64,
    max_states: Option<usize>,
    as_json: bool,
) -> ExitCode {
    if expected != ConsistencyModel::StrictSerializable {
        eprintln!("--engine dfs checks strict-serializable only (expected model is {expected})");
        return ExitCode::from(2);
    }
    let unsupported = history.txns().iter().flat_map(|t| t.mops.iter()).any(|m| {
        matches!(m, Mop::Increment { .. } | Mop::AddToSet { .. })
            || matches!(
                m,
                Mop::Read {
                    value: Some(ReadValue::Counter(_) | ReadValue::Set(_)),
                    ..
                }
            )
    });
    if unsupported {
        eprintln!(
            "--engine dfs models list/register histories only \
             (found counter/set operations)"
        );
        return ExitCode::from(2);
    }
    let mut k = KnossosOptions::default().with_budget(Duration::from_millis(time_budget_ms));
    if let Some(n) = max_states {
        k = k.with_max_states(n);
    }
    let res = elle::knossos::check(history, k);
    if as_json {
        use serde::Value;
        let word = match res.outcome {
            KnossosOutcome::Ok => "ok",
            KnossosOutcome::Violation => "violation",
            KnossosOutcome::Unknown => "unknown",
        };
        let v = Value::Map(vec![
            ("engine".into(), Value::Str("dfs".into())),
            ("model".into(), Value::Str(expected.name().into())),
            ("verdict".into(), Value::Str(word.into())),
            (
                "states_explored".into(),
                Value::UInt(res.states_explored as u64),
            ),
            (
                "elapsed_ms".into(),
                Value::Float(res.elapsed.as_secs_f64() * 1e3),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("report serializes")
        );
    } else {
        let word = match res.outcome {
            KnossosOutcome::Ok => "ok",
            KnossosOutcome::Violation => "violation",
            KnossosOutcome::Unknown => "unknown (budget exhausted)",
        };
        println!(
            "dfs: strict-serializable {word} ({} states, {:.3} ms)",
            res.states_explored,
            res.elapsed.as_secs_f64() * 1e3
        );
    }
    match res.outcome {
        KnossosOutcome::Ok => ExitCode::SUCCESS,
        KnossosOutcome::Violation => ExitCode::from(1),
        KnossosOutcome::Unknown => ExitCode::from(3),
    }
}

fn run_both(history: &History, opts: CheckOptions, as_json: bool, timing: bool) -> ExitCode {
    let Some(model) = sat_model_of(opts.expected) else {
        eprintln!(
            "--engine both checks --model serializable or snapshot-isolation \
             (expected model is {})",
            opts.expected
        );
        return ExitCode::from(2);
    };
    if opts.process_edges || opts.realtime_edges || opts.timestamp_edges {
        // Derived-order obligations (session/real-time/timestamp) are
        // cycle-engine-only; diffing against a SAT encoding that does
        // not model them would manufacture disagreements.
        eprintln!("--engine both does not combine with --process/--realtime/--timestamps");
        return ExitCode::from(2);
    }
    let cycle = match Checker::new(opts).try_check(history) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let sat = elle::sat::check(history, model, &SatOptions::default());
    if timing {
        sat_timing_line(&sat);
    }
    // The cycle engine is sound: any anomaly it reports must make the
    // SAT encoding unsatisfiable. The converse does not hold — SAT is
    // complete where the cycle search is not — so a SAT-only violation
    // is the documented completeness gap, not a disagreement.
    let disagreement = !cycle.ok() && sat.verdict.is_satisfiable();
    if as_json {
        use serde::Value;
        let v = Value::Map(vec![
            ("engine".into(), Value::Str("both".into())),
            ("disagreement".into(), Value::Bool(disagreement)),
            ("cycle".into(), serde::Serialize::serialize(&cycle)),
            ("sat".into(), sat_json(model, &sat)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("report serializes")
        );
    } else {
        if cycle.ok() {
            println!("cycle: {} ok", opts.expected);
        } else {
            println!(
                "cycle: {} violated ({} anomalies)",
                opts.expected,
                cycle.anomalies.len()
            );
        }
        print_sat_human(model, &sat);
        if disagreement {
            println!(
                "DISAGREEMENT: the cycle engine found an anomaly but the SAT \
                 engine found a legal {model} order — one of them is wrong"
            );
        } else if !cycle.ok() && sat.verdict.is_violated() {
            println!("engines agree: {model} is violated");
        } else if cycle.ok() && sat.verdict.is_satisfiable() {
            println!("engines agree: no {model} violation");
        }
    }
    if disagreement {
        return ExitCode::from(3);
    }
    match &sat.verdict {
        SatVerdict::Unsupported { .. } => ExitCode::from(2),
        SatVerdict::Unknown { .. } => ExitCode::from(3),
        _ if !cycle.ok() || sat.verdict.is_violated() => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}
