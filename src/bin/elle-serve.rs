//! Resident multi-tenant checking service: many independent streaming
//! checkers — one per tenant history — behind one process, with
//! admission control, per-tenant fault isolation, watchdog seals,
//! graceful drain, and crash-consistent recovery from a data directory.
//!
//! ```sh
//! elle-serve --data-dir /var/lib/elle < tagged-events.ndjson
//! elle-serve --listen 127.0.0.1:7199 --data-dir /var/lib/elle
//! elle-serve --chaos 4 --seeds 8       # self-test: chaos vs oracle
//! ```
//!
//! The wire protocol is NDJSON both ways; every request line is either
//! a tenant-tagged event (`{"tenant":"t1","event":{…}}`) or an op
//! (`seal`, `status`, `close`, `shutdown`). See the README's "Service
//! mode" section.
//!
//! Exit status: 0 when every tenant's final verdict satisfies the
//! expected model, 1 when any is violated, 2 on usage errors or failed
//! (strict-mode) tenants, 3 when any final epoch was poisoned.

use elle::prelude::*;
use elle::serve::{signal, solo_verdict, ServeConfig, Server, Sink, Submitted, TenantFinal};
use elle_history::RecoveryPolicy;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn parse_model(s: &str) -> Option<ConsistencyModel> {
    ConsistencyModel::ALL.into_iter().find(|m| m.name() == s)
}

fn usage_text() -> String {
    format!(
        "usage: elle-serve [options]\n\
         \n\
         Serve many independent checker streams (one per tenant) from one resident\n\
         process. Requests are NDJSON: {{\"tenant\":\"t1\",\"event\":{{…}}}} ingests one\n\
         event; {{\"tenant\":\"t1\",\"op\":\"seal\"|\"status\"|\"close\"}} and {{\"op\":\"status\"|\n\
         \"shutdown\"}} control. Responses (verdicts, warnings, rejects) are NDJSON too.\n\
         Reads stdin by default; EOF, a shutdown op, or SIGTERM/SIGINT drain\n\
         gracefully: every tenant is final-sealed and its verdict printed.\n\
         \n\
         options:\n\
         --listen <addr>    accept TCP connections speaking the same protocol\n\
         \u{20}                  (responses go to the requesting connection)\n\
         --data-dir <path>  durability root: per-tenant write-ahead journals and\n\
         \u{20}                  snapshots; on restart every tenant recovers and\n\
         \u{20}                  converges to the uninterrupted run's verdicts\n\
         --workers <n>      worker threads; tenants are sharded by id (default 4)\n\
         --epoch-txns <n>   per-tenant: seal every n transactions (default 1000)\n\
         --epoch-events <n> per-tenant: seal every n events\n\
         --max-epoch-ms <ms>  watchdog: force-seal any tenant whose epoch stays\n\
         \u{20}                  open this long with events buffered\n\
         --snapshot-events <n>  rotate a tenant's snapshot after n accepted\n\
         \u{20}                  events (default 4096)\n\
         --max-line-bytes <n>   reject request lines larger than this (default 1 MiB)\n\
         --max-tenant-bytes <n> per-tenant buffered-byte budget (default 4 MiB)\n\
         --max-total-bytes <n>  global buffered-byte budget (default 64 MiB)\n\
         --max-tenants <n>      live-tenant cap (default 1024)\n\
         --window-txns <n>      bounded memory per tenant: retire provably\n\
         \u{20}                  cycle-safe transactions beyond the most recent n\n\
         --max-tenant-resident-bytes <n>  per-tenant checker-state budget; at 3/4\n\
         \u{20}                  force a retirement seal, at the budget tighten the\n\
         \u{20}                  tenant's window (forced-window) and keep serving\n\
         --strict           fail a tenant on its first damaged line instead of\n\
         \u{20}                  quarantining (other tenants unaffected)\n\
         --model <name>     expected model (default strict-serializable):\n\
         {}\n\
         --process          derive session-order edges\n\
         --realtime         derive real-time edges\n\
         --timestamps       derive start-ordered (database timestamp) edges\n\
         --linearizable-keys  assume per-key linearizability (registers)\n\
         --sequential-keys    assume per-key sequential consistency\n\
         --max-cycles <n>   cap reported cycles per anomaly type\n\
         --chaos <n>        self-test: n concurrent chaos tenants (kills,\n\
         \u{20}                  reconnects, damaged wires) against the in-process\n\
         \u{20}                  engine, each verdict checked against a solo oracle\n\
         --seeds <n>        chaos schedules to run (default 4)\n\
         --chaos-txns <n>   transactions per chaos tenant (default 120)\n\
         \n\
         exit status:\n\
         0  every tenant's final verdict satisfies the expected model\n\
         1  some tenant's expected model is violated\n\
         2  usage error, or a strict-mode tenant failed on damaged input\n\
         3  some tenant's final epoch was poisoned by an internal error",
        ConsistencyModel::ALL
            .map(|m| format!("                   {}", m.name()))
            .join("\n")
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

/// Severity-ordered exit code over all final verdicts.
fn verdict_exit(finals: &[TenantFinal]) -> ExitCode {
    let mut code = 0u8;
    for f in finals {
        let c = if f.poisoned {
            3
        } else if f.ok.is_none() {
            2
        } else if f.ok == Some(false) {
            1
        } else {
            0
        };
        code = code.max(c);
    }
    ExitCode::from(code)
}

enum LineRead {
    Eof,
    Line,
    /// The line exceeded the cap; it was discarded up to its newline.
    /// Carries the number of bytes seen.
    Oversized(usize),
}

/// Read one newline-terminated line into `buf` without ever buffering
/// more than `cap` bytes of it — an oversized line is *discarded* as it
/// streams past, so a hostile or broken client cannot balloon memory.
/// A final unterminated fragment (torn connection) is surfaced as a
/// line, like `read_line` would.
fn read_line_capped(r: &mut impl BufRead, buf: &mut Vec<u8>, cap: usize) -> io::Result<LineRead> {
    buf.clear();
    let mut over = 0usize;
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if over > 0 {
                LineRead::Oversized(over)
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.unwrap_or(chunk.len());
        if over == 0 && buf.len() + take <= cap {
            buf.extend_from_slice(&chunk[..take]);
        } else {
            over += buf.len() + take;
            buf.clear();
        }
        let consumed = nl.map_or(chunk.len(), |i| i + 1);
        r.consume(consumed);
        if nl.is_some() {
            return Ok(if over > 0 {
                LineRead::Oversized(over)
            } else {
                LineRead::Line
            });
        }
    }
}

/// Feed one NDJSON source into the server. Returns true if a shutdown
/// was requested (op, or the signal latch between lines).
fn pump(server: &Server, reader: &mut impl BufRead, sink: &Sink, cap: usize) -> io::Result<bool> {
    let mut buf = Vec::new();
    loop {
        if signal::shutdown_requested() {
            return Ok(true);
        }
        match read_line_capped(reader, &mut buf, cap)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversized(n) => {
                sink(&elle::serve::reject(
                    None,
                    400,
                    &format!("line of {n} bytes exceeds the {cap}-byte limit — discarded"),
                ));
            }
            LineRead::Line => {
                let line = String::from_utf8_lossy(&buf);
                if let Submitted::Shutdown = server.submit(&line, sink) {
                    return Ok(true);
                }
            }
        }
    }
}

fn stdout_sink() -> Sink {
    let out = Arc::new(Mutex::new(io::stdout()));
    Arc::new(move |line: &str| {
        let mut out = out.lock().expect("stdout lock");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    })
}

fn emit_finals(finals: &[TenantFinal]) {
    let mut out = io::stdout().lock();
    for f in finals {
        let _ = writeln!(out, "{}", f.verdict);
    }
    let _ = out.flush();
}

fn run_stdin(cfg: ServeConfig) -> ExitCode {
    let sink = stdout_sink();
    let cap = cfg.max_line_bytes;
    let server = match Server::start(cfg, Arc::clone(&sink)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("elle-serve: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = BufReader::new(io::stdin());
    if let Err(e) = pump(&server, &mut reader, &sink, cap) {
        eprintln!("elle-serve: stdin read failed: {e}");
    }
    let finals = server.drain();
    emit_finals(&finals);
    verdict_exit(&finals)
}

fn run_listen(cfg: ServeConfig, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("elle-serve: cannot bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("elle-serve: cannot poll {addr}: {e}");
        return ExitCode::from(2);
    }
    let cap = cfg.max_line_bytes;
    let default_sink = stdout_sink();
    let server = match Server::start(cfg, Arc::clone(&default_sink)) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("elle-serve: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    let drain_requested = Arc::new(AtomicBool::new(false));
    eprintln!("elle-serve: listening on {addr}");
    loop {
        if signal::shutdown_requested() || drain_requested.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                let drain_requested = Arc::clone(&drain_requested);
                std::thread::spawn(move || serve_conn(&server, stream, cap, &drain_requested));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("elle-serve: accept failed: {e}");
                break;
            }
        }
    }
    let server = Arc::into_inner(server);
    // Client threads hold no Server clones (they borrow through Arc);
    // any still alive see 503s once draining starts and die with the
    // process. A held Arc just means a client is mid-submit: wait.
    let finals = match server {
        Some(s) => s.drain(),
        None => {
            std::thread::sleep(Duration::from_millis(100));
            Vec::new()
        }
    };
    emit_finals(&finals);
    verdict_exit(&finals)
}

fn serve_conn(server: &Server, stream: TcpStream, cap: usize, drain_requested: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let sink: Sink = Arc::new(move |line: &str| {
        let mut w = writer.lock().expect("conn lock");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    });
    let mut reader = BufReader::new(stream);
    if let Ok(true) = pump(server, &mut reader, &sink, cap) {
        drain_requested.store(true, Ordering::SeqCst);
    }
}

/// `--chaos`: concurrent seeded chaos tenants against the in-process
/// engine, every final verdict byte-checked against the solo oracle.
fn run_chaos(mut cfg: ServeConfig, tenants: usize, seeds: u64, txns: usize) -> ExitCode {
    use elle::dbsim::{chaos_session, delivered_lines, drive, FaultSchedule};

    cfg.data_dir = None;
    // Chaos wants convergence pressure, not admission pressure: roomy
    // budgets so no line is ever 429'd (a reject would desync the
    // oracle), small epochs so seals interleave with kills.
    cfg.max_tenant_bytes = cfg.max_tenant_bytes.max(64 << 20);
    cfg.max_total_bytes = cfg.max_total_bytes.max(256 << 20);
    if cfg.epoch_txns == Some(1000) {
        cfg.epoch_txns = Some(25);
    }
    let mut bad = 0usize;
    for seed in 0..seeds {
        let sessions: Vec<_> = (0..tenants)
            .map(|t| {
                let name = format!("chaos-{t}");
                let params = GenParams::contended(txns, ObjectKind::ListAppend)
                    .with_seed(seed * 1009 + t as u64);
                let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
                    .with_processes(4)
                    .with_seed(seed * 2003 + t as u64);
                let log = elle::gen::run_workload_log(params, db);
                // Tenant 0 gets a damaged wire; the rest stay clean, so
                // the run also demonstrates isolation under chaos.
                let schedule = if t == 0 {
                    FaultSchedule::typical(seed + 11)
                } else {
                    FaultSchedule::none()
                };
                chaos_session(&name, &log, &schedule, 2, seed * 31 + t as u64)
            })
            .collect();
        let discard: Sink = Arc::new(|_| {});
        let server = match Server::start(cfg.clone(), Arc::clone(&discard)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("elle-serve: chaos start failed: {e}");
                return ExitCode::from(2);
            }
        };
        std::thread::scope(|scope| {
            for session in &sessions {
                let server = &server;
                let discard = Arc::clone(&discard);
                scope.spawn(move || {
                    drive(session, |_attempt| {
                        Ok(SubmitWriter {
                            server,
                            sink: Arc::clone(&discard),
                            buf: Vec::new(),
                        })
                    })
                    .expect("in-process transport cannot fail")
                });
            }
        });
        let finals = server.drain();
        for session in &sessions {
            let want = solo_verdict(&cfg, &session.tenant, &delivered_lines(session));
            let got = finals
                .iter()
                .find(|f| f.tenant == session.tenant)
                .map(|f| f.verdict.clone())
                .unwrap_or_default();
            if got == want {
                eprintln!("chaos seed {seed} {}: converged", session.tenant);
            } else {
                bad += 1;
                eprintln!(
                    "chaos seed {seed} {}: DIVERGED\n  served: {got}\n  oracle: {want}",
                    session.tenant
                );
            }
        }
    }
    if bad == 0 {
        println!("chaos: all {} verdicts converged", seeds as usize * tenants);
        ExitCode::SUCCESS
    } else {
        println!("chaos: {bad} verdicts diverged");
        ExitCode::FAILURE
    }
}

/// An in-process "connection": buffers written bytes, submits each
/// completed line; a final unterminated fragment is submitted on drop,
/// exactly as the TCP reader surfaces a torn line at EOF.
struct SubmitWriter<'a> {
    server: &'a Server,
    sink: Sink,
    buf: Vec<u8>,
}

impl Write for SubmitWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
            let rest = self.buf.split_off(i + 1);
            let line = std::mem::replace(&mut self.buf, rest);
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            self.server.submit(&line, &self.sink);
        }
        Ok(data.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for SubmitWriter<'_> {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let line = String::from_utf8_lossy(&self.buf).into_owned();
            self.server.submit(&line, &self.sink);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut registers = RegisterOptions::default();
    let mut listen: Option<String> = None;
    let mut chaos: Option<usize> = None;
    let mut seeds = 4u64;
    let mut chaos_txns = 120usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => {
                let Some(addr) = it.next() else {
                    return usage();
                };
                listen = Some(addr.clone());
            }
            "--data-dir" => {
                let Some(p) = it.next() else {
                    return usage();
                };
                cfg.data_dir = Some(p.into());
            }
            "--workers" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.workers = n;
            }
            "--epoch-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.epoch_txns = Some(n);
            }
            "--epoch-events" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.epoch_events = Some(n);
            }
            "--max-epoch-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_epoch = Some(Duration::from_millis(n));
            }
            "--snapshot-events" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.snapshot_events = n;
            }
            "--max-line-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_line_bytes = n;
            }
            "--max-tenant-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_tenant_bytes = n;
            }
            "--max-total-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_total_bytes = n;
            }
            "--max-tenants" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_tenants = n;
            }
            "--window-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.window = elle::stream::WindowPolicy::TxnCount(n);
            }
            "--max-tenant-resident-bytes" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.max_tenant_resident_bytes = Some(n);
            }
            "--strict" => cfg.recovery = RecoveryPolicy::Strict,
            "--model" => {
                let Some(name) = it.next() else {
                    return usage();
                };
                let Some(m) = parse_model(name) else {
                    eprintln!("unknown model {name:?}");
                    return usage();
                };
                cfg.opts.expected = m;
            }
            "--process" => cfg.opts = cfg.opts.with_process_edges(true),
            "--realtime" => cfg.opts = cfg.opts.with_realtime_edges(true),
            "--timestamps" => cfg.opts = cfg.opts.with_timestamp_edges(true),
            "--linearizable-keys" => registers.linearizable_keys = true,
            "--sequential-keys" => registers.sequential_keys = true,
            "--max-cycles" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cfg.opts = cfg.opts.with_max_cycles(n);
            }
            // Undocumented test hook: panic inside the named tenant's
            // seal of epoch N ("tenant:N"), to exercise poisoned-epoch
            // isolation across tenants end to end.
            "--inject-seal-panic" => {
                let Some(spec) = it.next() else {
                    return usage();
                };
                let Some((tenant, epoch)) = spec.rsplit_once(':') else {
                    return usage();
                };
                let Ok(epoch) = epoch.parse() else {
                    return usage();
                };
                cfg.inject_seal_panic = Some((tenant.to_string(), epoch));
            }
            "--chaos" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                chaos = Some(n);
            }
            "--seeds" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                seeds = n;
            }
            "--chaos-txns" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                chaos_txns = n;
            }
            "--help" | "-h" => return help(),
            other => {
                eprintln!("unrecognized argument {other:?}");
                return usage();
            }
        }
    }
    cfg.opts = cfg.opts.with_registers(registers);

    signal::install();
    match (chaos, listen) {
        (Some(n), _) => run_chaos(cfg, n.max(1), seeds, chaos_txns),
        (None, Some(addr)) => run_listen(cfg, &addr),
        (None, None) => run_stdin(cfg),
    }
}
