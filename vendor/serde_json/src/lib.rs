//! Vendored serde_json shim: renders the vendored `serde` crate's
//! [`Value`] tree as JSON and parses JSON back into it. Output matches
//! upstream serde_json's formatting (compact: no spaces; pretty:
//! two-space indent), so golden strings and `contains` assertions
//! written against the real crate keep passing.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::SerdeError as Error;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::deserialize(&value)
}

// ── Writing ─────────────────────────────────────────────────────────────

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; upstream writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── Parsing ─────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("expected low surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_formatting_matches_upstream() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(out, r#"{"a":1,"b":[null,true]}"#);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Value::Map(vec![
            ("text".into(), Value::Str("line\n\"quoted\" … ≪x".into())),
            ("neg".into(), Value::Int(-42)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("f".into(), Value::Float(0.5)),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v);
        let back = Parser::new(&out).parse_document().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips() {
        let v = Value::Array(vec![
            Value::Map(vec![("k".into(), Value::UInt(7))]),
            Value::Array(vec![]),
        ]);
        let s = {
            let mut out = String::new();
            write_value_pretty(&mut out, &v, 0);
            out
        };
        assert!(s.contains("\n  "));
        assert_eq!(Parser::new(&s).parse_document().unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = Parser::new(r#""A😀""#).parse_document().unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("{").parse_document().is_err());
        assert!(Parser::new("[1,]").parse_document().is_err());
        assert!(Parser::new("1 2").parse_document().is_err());
    }
}
