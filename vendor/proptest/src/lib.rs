//! Vendored proptest shim: the strategy combinators and macros this
//! workspace's property tests use, minus shrinking. Each test runs
//! `ProptestConfig::cases` random cases from a deterministic per-test
//! seed (hash of the test's module path and name), so failures
//! reproduce across runs and machines.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Everything a property-test module needs, for glob import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn sample<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.0.gen_range(range)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generation strategy for values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from alternatives; panics when empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.sample(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ── Range strategies ────────────────────────────────────────────────────

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ── Tuple strategies ────────────────────────────────────────────────────

macro_rules! impl_tuple_strategy {
    ($( ($($s:ident),+) )+) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

// ── any / Arbitrary ─────────────────────────────────────────────────────

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for an integer type.
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl<T> FullRange<T> {
    pub(crate) const NEW: Self = FullRange(std::marker::PhantomData);
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A `Vec` of `size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A `BTreeSet` of at most `size` elements drawn from `elem`
        /// (duplicates collapse, as upstream permits).
        pub fn btree_set<S>(elem: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { elem, size }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `None` roughly a quarter of the time, else `Some(elem)`.
        pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
            OptionStrategy { elem }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            elem: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                use rand::RngCore;
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.elem.generate(rng))
                }
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::FullRange;

        /// A uniform boolean.
        pub const ANY: FullRange<::core::primitive::bool> = FullRange::NEW;
    }
}

// ── Macros ──────────────────────────────────────────────────────────────

/// Define property tests. Supports the upstream invocation shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, (a, b) in (0u32..4, 0u32..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::Strategy::generate(&($strat), &mut __rng);
                            )*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest `{}` case {}/{} failed:\n{}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a property test; failures report the case rather than
/// panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)+),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

/// A choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$( $crate::Strategy::boxed($s) ),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..4, prop_oneof![Just(true), Just(false)]), 0..8),
            o in prop::option::of(0i64..5),
            b in prop::bool::ANY,
            s in any::<u64>().prop_map(|n| n % 10),
        ) {
            prop_assert!(v.len() < 8);
            if let Some(x) = o { prop_assert!((0..5).contains(&x)); }
            let _ = b;
            prop_assert!(s < 10);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let s = 0u64..100;
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
