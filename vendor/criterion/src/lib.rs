//! Vendored criterion shim: a wall-clock benchmark harness with the
//! upstream API shape (`criterion_group!` / `criterion_main!`,
//! benchmark groups, throughput annotations) but none of the
//! statistics machinery. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and reports median / mean / throughput
//! on stdout.
//!
//! Set `CRITERION_JSON=<path>` to also write a machine-readable summary
//! of every benchmark run by the process — used to record datapoints
//! like `BENCH_checker.json`. Set `CRITERION_QUICK=1` to take a single
//! sample per benchmark (the CI smoke mode).

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One measured benchmark, as recorded for the JSON summary.
#[derive(Debug, Clone)]
pub struct Record {
    /// `group/benchmark` path.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Median sample time.
    pub median: Duration,
    /// Mean sample time.
    pub mean: Duration,
    /// Per-iteration throughput, if annotated.
    pub throughput: Option<Throughput>,
}

/// The top-level harness.
pub struct Criterion {
    default_sample_size: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            records: Vec::new(),
        }
    }
}

/// The per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, keeping its result alive through a black box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std_black_box(f());
        self.sample = start.elapsed();
        self.iters = 1;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let record = run_samples(&full, self.sample_size, self.throughput, |b| f(b, input));
        self.criterion.records.push(record);
        self
    }

    /// Run a benchmark without an input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let record = run_samples(&full, self.sample_size, self.throughput, |b| f(b));
        self.criterion.records.push(record);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let record = run_samples(name, self.default_sample_size, None, |b| f(b));
        self.records.push(record);
        self
    }

    /// Write the JSON summary when `CRITERION_JSON` is set. Called by
    /// the `criterion_main!`-generated main after all groups ran.
    pub fn final_summary(&self) {
        let Some(path) = std::env::var_os("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => format!(
                    ",\"elements_per_iter\":{n},\"elements_per_sec\":{:.1}",
                    n as f64 / r.median.as_secs_f64()
                ),
                Some(Throughput::Bytes(n)) => format!(
                    ",\"bytes_per_iter\":{n},\"bytes_per_sec\":{:.1}",
                    n as f64 / r.median.as_secs_f64()
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"id\":\"{}\",\"samples\":{},\"median_ns\":{},\"mean_ns\":{}{}}}",
                r.id,
                r.samples,
                r.median.as_nanos(),
                r.mean.as_nanos(),
                throughput
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path:?}: {e}");
        }
    }
}

/// `CRITERION_QUICK=1` caps every benchmark at a single timed sample —
/// a smoke mode for CI, where the goal is "the harness still runs", not
/// statistics.
fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1"))
}

fn run_samples(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut run: impl FnMut(&mut Bencher),
) -> Record {
    let sample_size = if quick_mode() { 1 } else { sample_size };
    let mut b = Bencher {
        sample: Duration::ZERO,
        iters: 0,
    };
    // Warm-up (also catches closures that never call `iter`).
    run(&mut b);
    assert!(b.iters > 0, "benchmark {id} never called Bencher::iter");

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        run(&mut b);
        samples.push(b.sample);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>11.1} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>11.1} B/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{id:<40} time: [median {median:>10.3?}  mean {mean:>10.3?}]{thrpt}");

    Record {
        id: id.to_string(),
        samples: sample_size,
        median,
        mean,
        throughput,
    }
}

/// Bundle benchmark functions into a group runner, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, x| {
                b.iter(|| x * 2)
            });
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        c.bench_function("solo", |b| b.iter(|| black_box(42)));
        assert_eq!(c.records.len(), 3);
        assert_eq!(c.records[0].id, "g/7");
        assert!(c.records[0].throughput.is_some());
        assert_eq!(c.records[1].id, "g/plain");
        assert_eq!(c.records[2].id, "solo");
    }
}
