//! Vendored subset of `rand` sufficient for this workspace: seedable
//! small RNGs with `gen_range` / `gen_bool`. Deterministic by
//! construction — every consumer seeds explicitly, so cross-version
//! stream stability only has to hold against *this* implementation.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the same
//! construction upstream `SmallRng` uses on 64-bit targets.

#![forbid(unsafe_code)]

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics when the range is empty, like upstream.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, exactly as upstream's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `word % span`, handling `span == 2^64` (full u64 range) without
/// overflow. Modulo bias is ≤ 2⁻⁶⁴·span — irrelevant for simulation.
#[inline]
fn widening_mod(word: u64, span: u128) -> u64 {
    (word as u128 % span) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full state, which
            // is never all-zero.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(1u64..=6);
            assert!((1..=6).contains(&w));
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut r = SmallRng::seed_from_u64(3);
        let _ = r.gen_range(0u64..u64::MAX);
        let _ = r.gen_range(0u64..=u64::MAX);
    }
}
