//! Vendored `serde_derive` shim: `#[derive(Serialize, Deserialize)]`
//! for the shapes this workspace uses, generating impls of the
//! Value-tree traits in the vendored `serde` crate.
//!
//! Supported shapes (all that appear in the workspace):
//! * named-field structs, with `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` field attributes;
//! * tuple structs (arity 1 serializes transparently, like upstream
//!   newtypes; `#[serde(transparent)]` is accepted and equivalent);
//! * enums with unit, newtype, tuple, and struct variants, rendered in
//!   upstream's externally-tagged representation;
//! * explicit discriminants (`Variant = 0`) are skipped.
//!
//! Generics are intentionally unsupported — the derive panics rather
//! than emitting wrong code.
//!
//! The implementation walks the raw `TokenTree`s (no syn/quote, so the
//! shim stays dependency-free) and emits the impl source as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ── Parsed model ────────────────────────────────────────────────────────

struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
    #[allow(dead_code)]
    transparent: bool,
}

// ── Entry points ────────────────────────────────────────────────────────

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ── Token-tree parsing ──────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = scan_attr(&tokens, &mut i);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: no struct/enum found"),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are unsupported ({name})");
    }

    let kind = if is_enum {
        let body = expect_group(&tokens, i, Delimiter::Brace, &name);
        Kind::Enum(parse_variants(&body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Struct(Shape::Named(parse_named_fields(&body)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Struct(Shape::Tuple(count_tuple_fields(&body)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => panic!("serde_derive shim: unexpected struct body for {name}: {other:?}"),
        }
    };

    Item { name, kind }
}

fn expect_group(tokens: &[TokenTree], i: usize, delim: Delimiter, name: &str) -> Vec<TokenTree> {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => g.stream().into_iter().collect(),
        other => panic!("serde_derive shim: expected body group for {name}, got {other:?}"),
    }
}

/// Consume one `#[...]` attribute starting at `*i` (which points at the
/// `#`), returning its parsed serde flags, if it is a serde attribute.
fn scan_attr(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    *i += 1; // '#'
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.clone(),
        other => panic!("serde_derive shim: malformed attribute: {other:?}"),
    };
    *i += 1;
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = SerdeAttrs::default();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return out,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return out;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "default" => out.default = true,
                "transparent" => out.transparent = true,
                "skip_serializing_if" => {
                    // skip_serializing_if = "path"
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (args.get(j + 1), args.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let text = lit.to_string();
                            out.skip_if = Some(text.trim_matches('"').to_string());
                            j += 2;
                        }
                    }
                }
                other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive shim: unexpected serde attr token {other:?}"),
        }
        j += 1;
    }
    out
}

/// Split on commas at angle-bracket depth zero (groups already nest).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    split_top_level(tokens).len()
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    split_top_level(tokens)
        .iter()
        .map(|element| {
            let mut attrs = SerdeAttrs::default();
            let mut i = 0;
            loop {
                match element.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        let a = scan_attr(element, &mut i);
                        attrs.default |= a.default;
                        if a.skip_if.is_some() {
                            attrs.skip_if = a.skip_if;
                        }
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        i += 1;
                        if let Some(TokenTree::Group(g)) = element.get(i) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                i += 1;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let name = match element.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other:?}"),
            };
            Field {
                name,
                default: attrs.default,
                skip_if: attrs.skip_if,
            }
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level(tokens)
        .iter()
        .map(|element| {
            let mut i = 0;
            while matches!(element.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                let _ = scan_attr(element, &mut i);
            }
            let name = match element.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive shim: expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match element.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Shape::Tuple(count_tuple_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Shape::Named(parse_named_fields(&inner))
                }
                // `Variant = disc` or end of element: a unit variant.
                _ => Shape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ── Code generation ─────────────────────────────────────────────────────

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let mut s = String::from(
                "let mut __m: Vec<(::std::string::String, ::serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                let push = format!(
                    "__m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::serialize(&self.{0})));",
                    f.name
                );
                match &f.skip_if {
                    Some(pred) => {
                        s.push_str(&format!("if !({pred}(&self.{})) {{ {push} }}\n", f.name));
                    }
                    None => {
                        s.push_str(&push);
                        s.push('\n');
                    }
                }
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::serialize({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "const _: () = {{\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n\
         }};"
    )
}

fn gen_named_field_reads(ty_label: &str, map_expr: &str, fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::core::result::Result::Err(\
                     ::serde::__private::missing_field(\"{ty_label}\", \"{}\"))",
                    f.name
                )
            };
            format!(
                "{0}: match ::serde::__private::get({map_expr}, \"{0}\") {{\n\
                 ::core::option::Option::Some(__x) => \
                 ::serde::Deserialize::deserialize(__x)?,\n\
                 ::core::option::Option::None => {missing},\n}},\n",
                f.name
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("::core::result::Result::Ok({name})"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__private::expect_tuple(__v, {n}, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name}({}))",
                reads.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let reads = gen_named_field_reads(name, "__m", fields);
            format!(
                "let __m = ::serde::__private::expect_map(__v, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n{reads}}})"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__val)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = ::serde::__private::expect_tuple(\
                             __val, {n}, \"{name}::{vn}\")?;\n\
                             ::core::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            reads.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let label = format!("{name}::{vn}");
                        let reads = gen_named_field_reads(&label, "__vm", fields);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __vm = ::serde::__private::expect_map(\
                             __val, \"{label}\")?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{reads}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __val) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(\
                 ::serde::__private::bad_enum_shape(\"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "const _: () = {{\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::SerdeError> {{\n{body}\n}}\n\
         }}\n\
         }};"
    )
}
