//! Vendored subset of `rayon`: `par_iter().map(..).collect()` over
//! slices, backed by `std::thread::scope`. Order-preserving — chunk
//! results are concatenated in input order, so a parallel map is
//! observationally identical to its sequential counterpart.
//!
//! This is not a work-stealing pool; each `collect` spawns up to
//! `available_parallelism` scoped threads over contiguous chunks. For
//! the checker's per-key partitions (coarse, similarly-sized units of
//! work) that is within noise of the real thing, and it keeps the
//! build offline.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Rayon-style prelude: glob-import to get the parallel-iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Types offering a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded.
    type Item: Sync + 'a;
    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// A mapped parallel iterator with per-worker state (see
/// [`ParIter::map_init`]).
pub struct ParMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

/// The operations shared by this shim's parallel iterators.
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Run the pipeline, producing items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Collect into a container (only `Vec<Item>` is supported).
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map each item through `f` in parallel, threading mutable state
    /// created once per worker by `init` — upstream rayon's `map_init`.
    /// Each worker processes a contiguous chunk, so the state (e.g. a
    /// search scratch buffer) is reused across that chunk's items instead
    /// of being reallocated per item.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_slice(self.items, &self.f)
    }
}

impl<'a, T, S, R, INIT, F> ParallelIterator for ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.items;
        let init = &self.init;
        let f = &self.f;
        let threads = current_num_threads().min(items.len());
        if threads <= 1 {
            let mut state = init();
            return items.iter().map(|x| f(&mut state, x)).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut out: Vec<R> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        let mut state = init();
                        part.iter().map(|x| f(&mut state, x)).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("parallel map worker panicked"));
            }
        });
        out
    }
}

/// Containers constructible from an ordered parallel result.
pub trait FromParallel<T> {
    /// Build from items already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Order-preserving parallel map over a slice: the workhorse behind the
/// iterator facade, also usable directly.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel map worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_preserves_order_and_reuses_state() {
        let xs: Vec<u64> = (0..5_000).collect();
        let out: Vec<u64> = xs
            .par_iter()
            .map_init(
                || 0u64, // per-worker accumulator proves state is threaded
                |acc, x| {
                    *acc += 1;
                    x * 3
                },
            )
            .collect();
        assert_eq!(out, (0..5_000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
