//! # tinysat
//!
//! A small, self-contained CDCL SAT solver in the MiniSat lineage —
//! vendored like the other offline shims so the workspace builds with no
//! network access. Features: two-watched-literal propagation, VSIDS-lite
//! activity branching (binary heap with lazy deletion), first-UIP conflict
//! analysis with clause learning, Luby-sequence restarts, and phase
//! saving. No clause-database reduction and no preprocessing: the
//! workloads this serves (order-variable encodings of isolation models
//! over a few thousand variables) never grow a clause database large
//! enough for GC to matter, and keeping every learned clause makes the
//! incremental add-clause / re-solve loop the encoder's lazy-transitivity
//! refinement uses trivially sound.
//!
//! Clauses may be added at any time while the solver is at decision level
//! 0 (fresh, or after any `solve*` call returns — they always backtrack
//! fully), so a caller can interleave `solve` and `add_clause` to refine
//! an abstraction, keeping everything learned so far.

#![forbid(unsafe_code)]

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: a variable with a sign. Encoded as `2·var + sign` where
/// sign 1 is negation, so a literal's complement is one XOR away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether this is the negated polarity.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[inline]
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Truth value of a variable in the partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Undef,
    True,
    False,
}

/// The value of literal `l` under the variable assignment `assign`.
/// A free function (not a method) so propagation can read values while
/// holding disjoint mutable borrows of other solver fields.
#[inline]
fn lit_val(assign: &[Val], l: Lit) -> Val {
    match assign[l.var() as usize] {
        Val::Undef => Val::Undef,
        Val::True => {
            if l.is_neg() {
                Val::False
            } else {
                Val::True
            }
        }
        Val::False => {
            if l.is_neg() {
                Val::True
            } else {
                Val::False
            }
        }
    }
}

/// Result of a `solve` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (readable via [`Solver::model_value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Solver statistics, cumulative across `solve` calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

const INVALID: u32 = u32::MAX;

/// The solver.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit]`: clause indices watching `lit` among their first two.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`INVALID` for decisions).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Max-activity heap with position tracking.
    heap: Vec<Var>,
    heap_pos: Vec<u32>,
    /// Saved polarity per variable (phase saving).
    phase: Vec<bool>,
    /// Model from the last Sat answer.
    model: Vec<bool>,
    /// Set when the clause set is unsatisfiable at level 0.
    unsat: bool,
    /// Literals of the clause that closed the refutation: the original
    /// literals of the last clause found conflicting at decision level 0
    /// (or of an `add_clause` that reduced to the empty clause). Not an
    /// unsatisfiable core, but every variable in it participates in the
    /// final contradiction — enough to seed witness mapping.
    final_conflict: Vec<Lit>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Statistics.
    pub stats: Stats,
}

impl Solver {
    /// A fresh, empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// Allocate a new variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(Val::Undef);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap_pos.push(INVALID);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (problem + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The value of `v` in the last satisfying model. Panics unless the
    /// previous `solve` returned [`SolveResult::Sat`].
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v as usize]
    }

    /// The literals of the clause that closed the refutation, once a
    /// solve has returned [`SolveResult::Unsat`]. Empty before that.
    pub fn final_conflict(&self) -> &[Lit] {
        &self.final_conflict
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the clause set is now known
    /// unsatisfiable (empty clause, or a level-0 contradiction). Must be
    /// called at decision level 0 (always true between `solve` calls).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if self.unsat {
            return false;
        }
        // Normalize: drop satisfied clauses and false literals, sort,
        // dedup, drop tautologies.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!((l.var() as usize) < self.assign.len(), "unknown var");
            match lit_val(&self.assign, l) {
                Val::True => return true, // already satisfied at level 0
                Val::False => continue,   // can never help
                Val::Undef => c.push(l),
            }
        }
        c.sort_unstable();
        c.dedup();
        // Same-variable literals sort adjacently (pos(v) = 2v, neg(v) = 2v+1).
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology: x ∨ ¬x
        }
        match c.len() {
            0 => {
                self.unsat = true;
                self.final_conflict = lits.to_vec();
                false
            }
            1 => {
                self.enqueue(c[0], INVALID);
                if let Some(confl) = self.propagate() {
                    self.unsat = true;
                    self.final_conflict = self.clauses[confl as usize].lits.clone();
                    false
                } else {
                    true
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].idx()].push(ci);
                self.watches[c[1].idx()].push(ci);
                self.clauses.push(Clause { lits: c });
                true
            }
        }
    }

    /// Solve with an effectively unlimited conflict budget.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(u64::MAX)
    }

    /// Solve, giving up with [`SolveResult::Unknown`] after
    /// `max_conflicts` further conflicts. Always returns at decision
    /// level 0, so more clauses may be added afterwards.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        let budget = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart_idx: u64 = 0;
        let mut until_restart = luby(restart_idx) * 64;
        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                until_restart = until_restart.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.unsat = true;
                    self.final_conflict = self.clauses[confl as usize].lits.clone();
                    break SolveResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.backtrack(back_level);
                self.learn(learnt);
                self.var_inc *= 1.0 / 0.95;
                if self.var_inc > 1e100 {
                    for a in &mut self.activity {
                        *a *= 1e-100;
                    }
                    self.var_inc *= 1e-100;
                }
                if self.stats.conflicts >= budget {
                    break SolveResult::Unknown;
                }
            } else if until_restart == 0 {
                self.stats.restarts += 1;
                restart_idx += 1;
                until_restart = luby(restart_idx) * 64;
                self.backtrack(0);
            } else {
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assign.iter().map(|v| matches!(v, Val::True)).collect();
                        break SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = if self.phase[v as usize] {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        };
                        self.enqueue(l, INVALID);
                    }
                }
            }
        };
        self.backtrack(0);
        result
    }

    #[inline]
    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(lit_val(&self.assign, l), Val::Undef);
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() { Val::False } else { Val::True };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            // Clauses watching ¬p must find a new watch or become unit.
            let mut ws = std::mem::take(&mut self.watches[false_lit.idx()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                // Normalize so the newly-false watch sits at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if lit_val(&self.assign, first) == Val::True {
                    i += 1;
                    continue; // satisfied; keep watching
                }
                // Look for a non-false literal to watch instead.
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if lit_val(&self.assign, lk) != Val::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.idx()].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Unit or conflicting.
                if lit_val(&self.assign, first) == Val::False {
                    // Conflict: restore the remaining watches and bail.
                    self.watches[false_lit.idx()].extend_from_slice(&ws);
                    self.qhead = self.trail.len();
                    return Some(ci as u32);
                }
                self.enqueue(first, ci as u32);
                i += 1;
            }
            self.watches[false_lit.idx()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first, watch partner second) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut first_clause = true;

        loop {
            // For reason clauses, position 0 holds the implied literal
            // itself — skip it; for the original conflict, use all.
            let skip = if first_clause { 0 } else { 1 };
            first_clause = false;
            let mut bump: Vec<Var> = Vec::new();
            {
                let cl = &self.clauses[confl as usize];
                for &q in &cl.lits[skip..] {
                    let v = q.var() as usize;
                    if !self.seen[v] && self.level[v] > 0 {
                        self.seen[v] = true;
                        bump.push(q.var());
                        if self.level[v] >= current {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            for v in bump {
                self.bump_activity(v);
            }
            // Walk back to the most recent seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let q = self.trail[index];
            self.seen[q.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = q.negate();
                break;
            }
            confl = self.reason[q.var() as usize];
            debug_assert_ne!(confl, INVALID, "implied literal must have a reason");
        }
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backtrack to the second-highest level in the clause, putting
        // that literal in watch position 1.
        let mut back_level = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            back_level = self.level[learnt[1].var() as usize];
        }
        (learnt, back_level)
    }

    /// Install a learned clause (asserting literal first) and enqueue it.
    fn learn(&mut self, learnt: Vec<Lit>) {
        self.stats.learned += 1;
        let assert_lit = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(assert_lit, INVALID);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watches[learnt[0].idx()].push(ci);
        self.watches[learnt[1].idx()].push(ci);
        self.clauses.push(Clause { lits: learnt });
        self.enqueue(assert_lit, ci);
    }

    fn backtrack(&mut self, to_level: u32) {
        if self.decision_level() <= to_level {
            return;
        }
        let bound = self.trail_lim[to_level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var();
            self.phase[v as usize] = !l.is_neg();
            self.assign[v as usize] = Val::Undef;
            self.reason[v as usize] = INVALID;
            self.heap_insert(v);
        }
        self.trail_lim.truncate(to_level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == Val::Undef {
                return Some(v);
            }
        }
        None
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.heap_pos[v as usize] != INVALID {
            self.heap_up(self.heap_pos[v as usize] as usize);
        }
    }

    // --- max-heap on activity, with position tracking ---

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v as usize] != INVALID {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = INVALID;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as u32;
        self.heap_pos[self.heap[j] as usize] = j as u32;
    }
}

/// The Luby restart sequence (0-based): 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, …
fn luby(x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Check a model against a clause list.
    fn satisfies(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
        clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var() as usize] != l.is_neg()))
    }

    /// A naive DPLL reference solver for differential testing.
    fn dpll(clauses: &[Vec<Lit>], n_vars: usize) -> bool {
        fn go(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
            // Unit propagation.
            loop {
                let mut unit: Option<Lit> = None;
                for c in clauses {
                    let mut satisfied = false;
                    let mut unassigned: Option<Lit> = None;
                    let mut n_unassigned = 0;
                    for &l in c {
                        match assign[l.var() as usize] {
                            None => {
                                n_unassigned += 1;
                                unassigned = Some(l);
                            }
                            Some(b) => {
                                if b != l.is_neg() {
                                    satisfied = true;
                                    break;
                                }
                            }
                        }
                    }
                    if satisfied {
                        continue;
                    }
                    match n_unassigned {
                        0 => return false, // falsified clause
                        1 => {
                            unit = unassigned;
                            break;
                        }
                        _ => {}
                    }
                }
                match unit {
                    Some(l) => assign[l.var() as usize] = Some(!l.is_neg()),
                    None => break,
                }
            }
            let all_sat = clauses.iter().all(|c| {
                c.iter()
                    .any(|&l| assign[l.var() as usize] == Some(!l.is_neg()))
            });
            if all_sat {
                return true;
            }
            let Some(v) = assign.iter().position(|a| a.is_none()) else {
                return false; // fully assigned but not satisfied
            };
            for b in [true, false] {
                let saved = assign.clone();
                assign[v] = Some(b);
                if go(clauses, assign) {
                    return true;
                }
                *assign = saved;
            }
            false
        }
        let mut assign = vec![None; n_vars];
        go(clauses, &mut assign)
    }

    fn solver_with(n_vars: usize, clauses: &[Vec<Lit>]) -> (Solver, bool) {
        let mut s = Solver::new();
        for _ in 0..n_vars {
            s.new_var();
        }
        let mut ok = true;
        for c in clauses {
            ok &= s.add_clause(c);
        }
        (s, ok)
    }

    /// Pigeonhole principle: `pigeons` into `holes`. UNSAT iff pigeons > holes.
    fn pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>) {
        let var = |p: usize, h: usize| (p * holes + h) as Var;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    #[test]
    fn trivial_cases() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat); // empty problem

        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v));

        assert!(!s.add_clause(&[Lit::neg(v)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v), Lit::neg(v)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) … forces all true.
        let n = 50;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(vars.iter().all(|&v| s.model_value(v)));
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (n, clauses) = pigeonhole(4, 4);
        let (mut s, ok) = solver_with(n, &clauses);
        assert!(ok);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<bool> = (0..n as Var).map(|v| s.model_value(v)).collect();
        assert!(satisfies(&model, &clauses));
    }

    #[test]
    fn pigeonhole_unsat_when_overfull() {
        for holes in 2..=5 {
            let (n, clauses) = pigeonhole(holes + 1, holes);
            let (mut s, _) = solver_with(n, &clauses);
            assert_eq!(
                s.solve(),
                SolveResult::Unsat,
                "PHP({},{})",
                holes + 1,
                holes
            );
        }
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let (n, clauses) = pigeonhole(8, 7);
        let (mut s, _) = solver_with(n, &clauses);
        assert_eq!(s.solve_limited(5), SolveResult::Unknown);
        // And the solver remains usable afterwards.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        // Solve, strengthen, solve again: the CEGAR usage pattern.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[Lit::neg(a), Lit::pos(c)]);
        s.add_clause(&[Lit::neg(c)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_value(c));
        assert!(s.model_value(a) || s.model_value(b));
        s.add_clause(&[Lit::neg(b)]);
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_matches_dpll_reference() {
        // Deterministic xorshift stream; near the phase-transition ratio.
        let mut state = 0xD1CEB00Cu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n_vars = 24;
        let n_clauses = 102; // ratio ≈ 4.26
        let mut sat_seen = 0;
        let mut unsat_seen = 0;
        for _round in 0..40 {
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..n_clauses {
                let mut c: Vec<Lit> = Vec::new();
                while c.len() < 3 {
                    let v = (next() % n_vars as u64) as Var;
                    if c.iter().any(|l| l.var() == v) {
                        continue;
                    }
                    c.push(if next() % 2 == 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                clauses.push(c);
            }
            let expected = dpll(&clauses, n_vars);
            let (mut s, ok) = solver_with(n_vars, &clauses);
            let got = if !ok { SolveResult::Unsat } else { s.solve() };
            match (expected, got) {
                (true, SolveResult::Sat) => {
                    sat_seen += 1;
                    let model: Vec<bool> = (0..n_vars as Var).map(|v| s.model_value(v)).collect();
                    assert!(satisfies(&model, &clauses), "model fails a clause");
                }
                (false, SolveResult::Unsat) => unsat_seen += 1,
                (e, g) => panic!("reference {e:?} vs cdcl {g:?}"),
            }
        }
        assert!(sat_seen > 0 && unsat_seen > 0, "want both outcomes covered");
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_accumulate() {
        let (n, clauses) = pigeonhole(5, 4);
        let (mut s, _) = solver_with(n, &clauses);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats.conflicts > 0);
        assert!(s.stats.decisions > 0);
        assert!(s.stats.propagations > 0);
    }
}
