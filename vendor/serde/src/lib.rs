//! Vendored serde shim: a self-describing [`Value`] tree plus
//! [`Serialize`] / [`Deserialize`] traits the `serde_derive` proc-macro
//! targets. The data model mirrors serde_json's external representation
//! (externally-tagged enums, transparent newtypes, null-for-`None`), so
//! JSON written by this shim matches what upstream serde_json would
//! produce for the same types.
//!
//! Only the surface this workspace uses is implemented; it is a build
//! shim, not a serde replacement.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value: the intermediate form between typed data
/// and a concrete wire format (serde_json renders it as JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The error type shared by deserialization and the JSON front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerdeError {
    msg: String,
}

impl SerdeError {
    /// Construct from any displayable message.
    pub fn new<T: fmt::Display>(msg: T) -> Self {
        SerdeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for SerdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SerdeError {}

/// Deserialization support: the error-construction trait callers import
/// as `serde::de::Error`.
pub mod de {
    use std::fmt;

    /// Construct format-agnostic deserialization errors.
    pub trait Error: Sized {
        /// An error carrying a custom message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::SerdeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            super::SerdeError::new(msg)
        }
    }
}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Render to the self-describing value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the self-describing value tree.
    fn deserialize(v: &Value) -> Result<Self, SerdeError>;
}

// A `Value` is its own wire form: identity impls let callers parse a
// document into the self-describing tree (staged decoding of envelope
// formats) and re-serialize a tree they have edited (e.g. a report with
// injected top-level gauge fields).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        Ok(v.clone())
    }
}

// ── Primitive impls ─────────────────────────────────────────────────────

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, SerdeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    _ => return Err(SerdeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| SerdeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, SerdeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| SerdeError::new(concat!(stringify!($t), " out of range")))?,
                    _ => return Err(SerdeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| SerdeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(SerdeError::new("expected f64")),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(SerdeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(SerdeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

// ── Containers ──────────────────────────────────────────────────────────

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(SerdeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(SerdeError::new("expected array")),
        }
    }
}

/// Render a map key. JSON keys are strings; like serde_json, string and
/// integer keys are supported and anything else is a data-model error.
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

/// Rebuild a key from its string form: try the string itself, then an
/// integer reading — covering string-like and integer-like key types.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, SerdeError> {
    if let Ok(k) = K::deserialize(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(SerdeError::new(format!(
        "cannot reconstruct map key from {s:?}"
    )))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(SerdeError::new("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($( ($($n:tt $t:ident),+) )+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, SerdeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| SerdeError::new("expected tuple array"))?;
                let expected = [$( $n, )+].len();
                if items.len() != expected {
                    return Err(SerdeError::new(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Support machinery for `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{SerdeError, Value};

    /// Look a field up in map entries.
    pub fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Expect a map, with a type name for the error message.
    pub fn expect_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], SerdeError> {
        v.as_map()
            .ok_or_else(|| SerdeError::new(format!("expected map for {ty}")))
    }

    /// Expect an array of exactly `n` elements.
    pub fn expect_tuple<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], SerdeError> {
        match v.as_array() {
            Some(items) if items.len() == n => Ok(items),
            _ => Err(SerdeError::new(format!(
                "expected {n}-element array for {ty}"
            ))),
        }
    }

    /// A missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> SerdeError {
        SerdeError::new(format!("missing field `{field}` in {ty}"))
    }

    /// An unknown-variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> SerdeError {
        SerdeError::new(format!("unknown variant `{variant}` for {ty}"))
    }

    /// An unexpected-shape error for enums.
    pub fn bad_enum_shape(ty: &str) -> SerdeError {
        SerdeError::new(format!("expected string or single-key map for {ty}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::deserialize(&Value::Null).unwrap(),
            None::<u64>
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(1u64, "a".to_string());
        assert_eq!(
            BTreeMap::<u64, String>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let t = (3u64, 9u64);
        assert_eq!(<(u64, u64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn signed_non_negative_serializes_as_uint() {
        assert_eq!(5i64.serialize(), Value::UInt(5));
        assert_eq!((-5i64).serialize(), Value::Int(-5));
    }
}
