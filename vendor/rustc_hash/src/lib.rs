//! Vendored subset of `rustc-hash`: the Fx (Firefox) hasher plus the
//! `FxHashMap` / `FxHashSet` aliases. Kept offline-buildable — the
//! algorithm matches upstream's word-at-a-time multiply-rotate scheme.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;

/// The default-constructible build hasher for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for small keys (integers, short
/// tuples). Not DoS-resistant; fine for checker-internal indices.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
