//! Quickstart: record a tiny observation by hand and check it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use elle::prelude::*;

fn main() {
    // A client observed three transactions against one list object.
    // T1 appended 5 and read the list as [2, 1, 5, 4] …
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();

    // The paper's §7.1 TiDB trio:
    b.txn(0)
        .read_list(34, [2, 1]) // T1 read before T2's append of 5 …
        .append(36, 5)
        .append(34, 4) // … but its own append landed after it.
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    let history = b.build();

    // Check against the level TiDB claimed: snapshot isolation.
    let report = Checker::new(CheckOptions::snapshot_isolation()).check(&history);

    println!("{}", report.summary());
    for anomaly in &report.anomalies {
        println!("{anomaly}");
    }

    assert!(!report.ok(), "this history exhibits read skew");
}
