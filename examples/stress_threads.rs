//! Parallel auditing: the simulator run is deterministic and
//! single-threaded, but histories and the checker are `Send`, so a fleet
//! of configurations can be audited concurrently — the way a CI matrix
//! would run Jepsen tests.
//!
//! ```sh
//! cargo run --example stress_threads
//! ```

use elle::prelude::*;

fn main() {
    let levels = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
        IsolationLevel::StrictSerializable,
    ];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &level in &levels {
            for seed in 0..4u64 {
                handles.push(scope.spawn(move || {
                    let params = GenParams {
                        n_txns: 800,
                        min_txn_len: 1,
                        max_txn_len: 5,
                        active_keys: 5,
                        writes_per_key: 64,
                        read_prob: 0.5,
                        kind: ObjectKind::ListAppend,
                        seed,
                        final_reads: false,
                    };
                    let db = DbConfig::new(level, ObjectKind::ListAppend)
                        .with_processes(8)
                        .with_seed(seed);
                    let h = run_workload(params, db).expect("pairs");
                    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
                    (level, seed, r.ok(), r.types().len())
                }));
            }
        }
        for h in handles {
            let (level, seed, ok, kinds) = h.join().expect("no panics");
            println!("{level:?} seed={seed}: strict-1SR ok={ok} ({kinds} anomaly types)");
        }
    });
}
