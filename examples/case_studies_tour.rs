//! A tour of the paper's four case studies (§7.1–§7.4) through the public
//! API: each simulated bug, the check that catches it, and the paper's
//! reported signature.
//!
//! ```sh
//! cargo run --example case_studies_tour
//! ```

use elle::prelude::*;

fn workload(kind: ObjectKind, seed: u64) -> GenParams {
    GenParams {
        n_txns: 600,
        min_txn_len: 2,
        max_txn_len: 5,
        active_keys: 4,
        writes_per_key: 128,
        read_prob: 0.5,
        kind,
        seed,
        final_reads: false,
    }
}

fn main() {
    // §7.1 TiDB: silent retries under claimed snapshot isolation.
    let h = run_workload(
        workload(ObjectKind::ListAppend, 1),
        DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(1)
            .with_bug(Bug::SilentRetry),
    )
    .unwrap();
    let r = Checker::new(CheckOptions::snapshot_isolation()).check(&h);
    println!("TiDB (SilentRetry): ok={} types={:?}", r.ok(), r.types());

    // §7.2 YugaByte: stale read timestamps under claimed strict-1SR.
    let h = run_workload(
        workload(ObjectKind::ListAppend, 2),
        DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(10)
            .with_seed(2)
            .with_bug(Bug::StaleReadTimestamp {
                period: 400,
                window: 120,
                lag: 0,
            }),
    )
    .unwrap();
    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
    println!(
        "YugaByte (StaleReadTimestamp): ok={} types={:?}",
        r.ok(),
        r.types()
    );

    // §7.3 FaunaDB: index reads missing tentative writes.
    let h = run_workload(
        workload(ObjectKind::ListAppend, 3),
        DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(6)
            .with_seed(3)
            .with_bug(Bug::IndexMissesOwnWrites { prob: 0.25 }),
    )
    .unwrap();
    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
    println!(
        "FaunaDB (IndexMissesOwnWrites): ok={} types={:?}",
        r.ok(),
        r.types()
    );

    // §7.4 Dgraph: fresh-shard nil reads on registers.
    let h = run_workload(
        workload(ObjectKind::Register, 4),
        DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::Register)
            .with_processes(8)
            .with_seed(4)
            .with_bug(Bug::FreshShardNilReads {
                period: 300,
                window: 90,
                shards: 4,
            }),
    )
    .unwrap();
    let opts = CheckOptions::snapshot_isolation()
        .with_process_edges(true)
        .with_realtime_edges(true)
        .with_registers(RegisterOptions {
            initial_state: true,
            writes_follow_reads: true,
            sequential_keys: true,
            linearizable_keys: true,
        });
    let r = Checker::new(opts).check(&h);
    println!(
        "Dgraph (FreshShardNilReads): ok={} types={:?}",
        r.ok(),
        r.types()
    );
}
