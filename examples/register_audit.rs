//! Register-mode analysis (§5, §7.4 of the paper): when a database offers
//! only read-write registers, Elle infers partial version orders from the
//! initial state, writes-follow-reads, per-process order, and (if the
//! vendor claims per-key linearizability) real-time order.
//!
//! ```sh
//! cargo run --example register_audit
//! ```

use elle::prelude::*;

fn main() {
    // A Dgraph-flavored configuration: snapshot isolation with nil reads
    // from freshly migrated shards.
    let params = GenParams {
        n_txns: 1_500,
        min_txn_len: 2,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 128,
        read_prob: 0.5,
        kind: ObjectKind::Register,
        seed: 7,
        final_reads: false,
    };
    let db = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::Register)
        .with_processes(8)
        .with_seed(7)
        .with_bug(Bug::FreshShardNilReads {
            period: 300,
            window: 90,
            shards: 4,
        });
    let history = run_workload(params, db).expect("history pairs");

    // The vendor claims snapshot isolation plus per-key linearizability,
    // so enable the corresponding version-order inferences.
    let opts = CheckOptions::snapshot_isolation()
        .with_process_edges(true)
        .with_realtime_edges(true)
        .with_registers(RegisterOptions {
            initial_state: true,
            writes_follow_reads: true,
            sequential_keys: true,
            linearizable_keys: true,
        });
    let report = Checker::new(opts).check(&history);
    println!("{}", report.summary());

    // §7.4: "Elle automatically reports and discards these inconsistent
    // version orders, to avoid generating trivial cycles."
    let cyclic = report.of_type(AnomalyType::CyclicVersionOrder).count();
    println!("cyclic version orders reported and discarded: {cyclic}");

    for a in report.anomalies.iter().filter(|a| a.typ.is_cycle()).take(1) {
        println!("example read-skew witness:\n{a}");
    }
}
