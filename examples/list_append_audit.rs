//! Audit a database configuration end to end: generate a list-append
//! workload (the paper's flagship), run it against the simulator at a
//! chosen isolation level, check the observation, and print the verdict.
//!
//! ```sh
//! cargo run --example list_append_audit -- snapshot-isolation
//! cargo run --example list_append_audit -- read-committed
//! ```

use elle::prelude::*;

fn parse_level(s: &str) -> IsolationLevel {
    match s {
        "read-uncommitted" => IsolationLevel::ReadUncommitted,
        "read-committed" => IsolationLevel::ReadCommitted,
        "snapshot-isolation" => IsolationLevel::SnapshotIsolation,
        "serializable" => IsolationLevel::Serializable,
        "strict-serializable" => IsolationLevel::StrictSerializable,
        other => {
            eprintln!("unknown isolation level {other:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let level = std::env::args()
        .nth(1)
        .map(|s| parse_level(&s))
        .unwrap_or(IsolationLevel::SnapshotIsolation);

    // The paper's workload shape: 1–10 op txns over a handful of keys,
    // with lost commit acknowledgements and process crashes (§7).
    let params = GenParams {
        n_txns: 2_000,
        min_txn_len: 1,
        max_txn_len: 10,
        active_keys: 5,
        writes_per_key: 256,
        read_prob: 0.5,
        kind: ObjectKind::ListAppend,
        seed: 42,
        final_reads: false,
    };
    let db = DbConfig::new(level, ObjectKind::ListAppend)
        .with_processes(10)
        .with_seed(42)
        .with_faults(FaultPlan::typical());

    let history = run_workload(params, db).expect("event log pairs cleanly");
    println!(
        "ran {} transactions ({} micro-ops) against a {:?} database",
        history.len(),
        history.mop_count(),
        level
    );

    // Check against everything the lattice knows, strongest first.
    let report = Checker::new(CheckOptions::strict_serializable()).check(&history);
    println!("{}", report.summary());

    if let Some(worst) = report.anomalies.first() {
        println!("first witness:\n{worst}");
    }
}
